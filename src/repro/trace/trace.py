"""The :class:`Trace` container: a packet stream in structure-of-arrays
form, with persistence.

Traces hold one numpy column per packet field; the simulator and the AFD
harness iterate these columns directly (no per-packet objects are
materialised until the simulation boundary).  Flow ids are dense
integers; the 5-tuple for each flow id sits in the parallel
``flows_*`` arrays.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.hashing.five_tuple import FiveTuple

__all__ = ["HeaderCursor", "Trace"]

_PACKET_COLS = ("flow_id", "size_bytes", "gap_ns")
_FLOW_COLS = ("flows_src_ip", "flows_dst_ip", "flows_src_port", "flows_dst_port", "flows_proto")


class HeaderCursor:
    """A resumable wrap-around reader over a trace's packet headers.

    Workload builders consume each service's trace in order, wrapping
    modulo the trace length when the arrival process outruns it.  The
    cursor makes that consumption incremental: ``take(k)`` returns the
    packet indices of the next *k* headers, and ``position`` (a plain
    int: total headers consumed so far) is all the state needed to
    resume — ``HeaderCursor(trace, position)`` continues exactly where
    a previous cursor stopped.
    """

    __slots__ = ("trace", "position")

    def __init__(self, trace: "Trace", position: int = 0) -> None:
        if trace.num_packets == 0:
            raise TraceFormatError("cannot read headers from an empty trace")
        if position < 0:
            raise TraceFormatError(f"cursor position must be >= 0, got {position}")
        self.trace = trace
        self.position = int(position)

    def take(self, k: int) -> np.ndarray:
        """Indices (into the trace's packet columns) of the next *k*
        headers, wrapping modulo the trace length."""
        if k < 0:
            raise TraceFormatError(f"cannot take {k} headers")
        pos = self.position
        idx = (pos + np.arange(k, dtype=np.int64)) % self.trace.num_packets
        self.position = pos + int(k)
        return idx


@dataclass
class Trace:
    """A packet trace in structure-of-arrays layout.

    Attributes
    ----------
    flow_id:
        int64 array, dense flow id per packet.
    size_bytes:
        int32 array, wire size per packet.
    gap_ns:
        int64 array, inter-arrival gap before each packet in nanoseconds
        (``gap_ns[0]`` is the offset of the first packet from t=0).
        Absolute timestamps are ``np.cumsum(gap_ns)``.  Replayers are
        free to ignore the native gaps and impose their own rate (the
        paper's generator paces headers from the trace at a modelled
        rate, eq. 1).
    flows_src_ip .. flows_proto:
        Per-flow 5-tuple columns indexed by flow id.
    name:
        Optional human-readable label (e.g. the preset name).
    """

    flow_id: np.ndarray
    size_bytes: np.ndarray
    gap_ns: np.ndarray
    flows_src_ip: np.ndarray
    flows_dst_ip: np.ndarray
    flows_src_port: np.ndarray
    flows_dst_port: np.ndarray
    flows_proto: np.ndarray
    name: str = field(default="")

    def __post_init__(self) -> None:
        self.flow_id = np.ascontiguousarray(self.flow_id, dtype=np.int64)
        self.size_bytes = np.ascontiguousarray(self.size_bytes, dtype=np.int32)
        self.gap_ns = np.ascontiguousarray(self.gap_ns, dtype=np.int64)
        self.flows_src_ip = np.ascontiguousarray(self.flows_src_ip, dtype=np.uint32)
        self.flows_dst_ip = np.ascontiguousarray(self.flows_dst_ip, dtype=np.uint32)
        self.flows_src_port = np.ascontiguousarray(self.flows_src_port, dtype=np.uint16)
        self.flows_dst_port = np.ascontiguousarray(self.flows_dst_port, dtype=np.uint16)
        self.flows_proto = np.ascontiguousarray(self.flows_proto, dtype=np.uint8)
        self.validate()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises :class:`TraceFormatError`."""
        n = self.flow_id.shape[0]
        if self.size_bytes.shape[0] != n or self.gap_ns.shape[0] != n:
            raise TraceFormatError("packet columns have mismatched lengths")
        f = self.flows_src_ip.shape[0]
        for col in _FLOW_COLS[1:]:
            if getattr(self, col).shape[0] != f:
                raise TraceFormatError("flow columns have mismatched lengths")
        if n:
            if self.flow_id.min() < 0:
                raise TraceFormatError("negative flow id")
            if self.flow_id.max() >= f:
                raise TraceFormatError(
                    f"flow id {int(self.flow_id.max())} out of range for {f} flows"
                )
            if self.size_bytes.min() <= 0:
                raise TraceFormatError("packet sizes must be positive")
            if self.gap_ns.min() < 0:
                raise TraceFormatError("inter-arrival gaps must be >= 0")
        elif f:
            # flow table without packets is allowed (empty capture window)
            pass

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_packets(self) -> int:
        return int(self.flow_id.shape[0])

    @property
    def num_flows(self) -> int:
        return int(self.flows_src_ip.shape[0])

    def __len__(self) -> int:
        return self.num_packets

    @property
    def timestamps_ns(self) -> np.ndarray:
        """Absolute arrival times (cumulative sum of gaps)."""
        return np.cumsum(self.gap_ns)

    @property
    def duration_ns(self) -> int:
        """Span from t=0 to the last packet's arrival."""
        if self.num_packets == 0:
            return 0
        return int(self.gap_ns.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.size_bytes.sum(dtype=np.int64))

    def fingerprint(self) -> str:
        """Content hash of every packet and flow column.

        Columns are cast to fixed-width little-endian dtypes before
        hashing, so the digest is stable across platforms and Python /
        numpy versions — it is what the golden preset-fingerprint tests
        pin (the trace *name* is deliberately excluded: two identically
        shaped traces match regardless of labelling).
        """
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        for col in _PACKET_COLS + _FLOW_COLS:
            arr = np.ascontiguousarray(getattr(self, col), dtype=np.dtype("<i8"))
            h.update(col.encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    def five_tuple(self, flow_id: int) -> FiveTuple:
        """The 5-tuple of a flow id."""
        if not 0 <= flow_id < self.num_flows:
            raise IndexError(f"flow id {flow_id} out of range")
        return FiveTuple(
            int(self.flows_src_ip[flow_id]),
            int(self.flows_dst_ip[flow_id]),
            int(self.flows_src_port[flow_id]),
            int(self.flows_dst_port[flow_id]),
            int(self.flows_proto[flow_id]),
        )

    def header_cursor(self, position: int = 0) -> HeaderCursor:
        """A :class:`HeaderCursor` over this trace's packet headers."""
        return HeaderCursor(self, position)

    def head(self, n: int) -> "Trace":
        """A trace containing only the first *n* packets (flow table is
        shared in full so flow ids remain valid)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return Trace(
            self.flow_id[:n],
            self.size_bytes[:n],
            self.gap_ns[:n],
            self.flows_src_ip,
            self.flows_dst_ip,
            self.flows_src_port,
            self.flows_dst_port,
            self.flows_proto,
            name=f"{self.name}[:{n}]" if self.name else "",
        )

    def concat(self, other: "Trace") -> "Trace":
        """Append *other* after this trace (its flow ids are re-based so
        the two flow populations stay distinct)."""
        offset = self.num_flows
        return Trace(
            np.concatenate([self.flow_id, other.flow_id + offset]),
            np.concatenate([self.size_bytes, other.size_bytes]),
            np.concatenate([self.gap_ns, other.gap_ns]),
            np.concatenate([self.flows_src_ip, other.flows_src_ip]),
            np.concatenate([self.flows_dst_ip, other.flows_dst_ip]),
            np.concatenate([self.flows_src_port, other.flows_src_port]),
            np.concatenate([self.flows_dst_port, other.flows_dst_port]),
            np.concatenate([self.flows_proto, other.flows_proto]),
            name=f"{self.name}+{other.name}",
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save_npz(self, path: str | Path) -> None:
        """Persist to a compressed ``.npz`` file."""
        arrays = {col: getattr(self, col) for col in _PACKET_COLS + _FLOW_COLS}
        np.savez_compressed(path, name=np.array(self.name), **arrays)

    @classmethod
    def load_npz(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`save_npz`."""
        try:
            with np.load(path) as data:
                kwargs = {}
                for col in _PACKET_COLS + _FLOW_COLS:
                    if col not in data:
                        raise TraceFormatError(f"{path}: missing column {col!r}")
                    kwargs[col] = data[col]
                name = str(data["name"]) if "name" in data else ""
        except (OSError, ValueError) as exc:
            raise TraceFormatError(f"cannot read trace from {path}: {exc}") from exc
        return cls(name=name, **kwargs)

    def to_csv(self, path: str | Path | io.TextIOBase) -> None:
        """Write a human-readable per-packet CSV (header row included)."""
        close = False
        if isinstance(path, (str, Path)):
            fh = open(path, "w", newline="")
            close = True
        else:
            fh = path
        try:
            writer = csv.writer(fh)
            writer.writerow(
                ["flow_id", "size_bytes", "gap_ns", "src_ip", "dst_ip",
                 "src_port", "dst_port", "proto"]
            )
            fid = self.flow_id
            for i in range(self.num_packets):
                f = int(fid[i])
                writer.writerow(
                    [f, int(self.size_bytes[i]), int(self.gap_ns[i]),
                     int(self.flows_src_ip[f]), int(self.flows_dst_ip[f]),
                     int(self.flows_src_port[f]), int(self.flows_dst_port[f]),
                     int(self.flows_proto[f])]
                )
        finally:
            if close:
                fh.close()

    @classmethod
    def from_packets(
        cls,
        packets: list[tuple[FiveTuple, int, int]],
        name: str = "",
    ) -> "Trace":
        """Build a trace from ``(five_tuple, size_bytes, gap_ns)`` rows,
        interning flow ids in first-seen order."""
        by_key: dict[FiveTuple, int] = {}
        flow_ids = np.empty(len(packets), dtype=np.int64)
        sizes = np.empty(len(packets), dtype=np.int32)
        gaps = np.empty(len(packets), dtype=np.int64)
        keys: list[FiveTuple] = []
        for i, (key, size, gap) in enumerate(packets):
            fid = by_key.get(key)
            if fid is None:
                fid = len(keys)
                by_key[key] = fid
                keys.append(key)
            flow_ids[i] = fid
            sizes[i] = size
            gaps[i] = gap
        return cls(
            flow_ids,
            sizes,
            gaps,
            np.array([k.src_ip for k in keys], dtype=np.uint32),
            np.array([k.dst_ip for k in keys], dtype=np.uint32),
            np.array([k.src_port for k in keys], dtype=np.uint16),
            np.array([k.dst_port for k in keys], dtype=np.uint16),
            np.array([k.protocol for k in keys], dtype=np.uint8),
            name=name,
        )
