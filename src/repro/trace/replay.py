"""Native-gap trace replay.

:func:`repro.sim.workload.build_workload` re-paces headers with the
Holt-Winters model (the paper's methodology).  For users who want to
replay a capture *as recorded* — e.g. a real pcap ingested via
:func:`repro.trace.pcap.trace_from_pcap` — this module builds a
workload from the trace's own inter-arrival gaps, optionally
time-scaled (``speedup=2`` halves every gap, doubling the offered
rate).

Multiple traces interleave on their native timelines (all starting at
t=0), one service per trace, flow ids re-based exactly as the modelled
builder does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.hashing.crc import CRC16_CCITT, CRCSpec
from repro.hashing.five_tuple import flow_hash_batch
from repro.sim.workload import Workload, _per_flow_sequences
from repro.trace.trace import Trace

__all__ = ["native_workload"]


def native_workload(
    traces: list[Trace],
    speedup: float = 1.0,
    hash_spec: CRCSpec = CRC16_CCITT,
) -> Workload:
    """Build a workload that replays *traces* at their recorded gaps.

    ``speedup`` divides every gap (>1 plays faster / offers more load,
    <1 slower).  The workload duration is the latest scaled timestamp
    plus one tick.
    """
    if not traces:
        raise ConfigError("need at least one trace")
    if speedup <= 0:
        raise ConfigError(f"speedup must be positive, got {speedup}")

    per_service = []
    flow_offset = 0
    for sid, trace in enumerate(traces):
        if trace.num_packets == 0:
            raise ConfigError(f"service {sid} has an empty trace")
        times = (np.cumsum(trace.gap_ns) / speedup).astype(np.int64)
        fids = trace.flow_id + flow_offset
        hashes = flow_hash_batch(
            trace.flows_src_ip, trace.flows_dst_ip,
            trace.flows_src_port, trace.flows_dst_port, trace.flows_proto,
            spec=hash_spec,
        ).astype(np.int64)
        per_service.append(
            (times, fids, trace.size_bytes, hashes[trace.flow_id])
        )
        flow_offset += trace.num_flows

    arrival = np.concatenate([s[0] for s in per_service])
    service = np.concatenate(
        [np.full(s[0].shape[0], sid, dtype=np.int32)
         for sid, s in enumerate(per_service)]
    )
    flow = np.concatenate([s[1] for s in per_service])
    size = np.concatenate([s[2] for s in per_service]).astype(np.int32)
    fhash = np.concatenate([s[3] for s in per_service])

    order = np.argsort(arrival, kind="stable")
    arrival = arrival[order]
    duration = int(arrival[-1]) + 1 if arrival.size else 1
    flow = flow[order]
    return Workload(
        arrival_ns=arrival,
        service_id=service[order],
        flow_id=flow,
        size_bytes=size[order],
        flow_hash=fhash[order],
        seq=_per_flow_sequences(flow, flow_offset),
        num_flows=flow_offset,
        num_services=len(traces),
        duration_ns=duration,
    )
