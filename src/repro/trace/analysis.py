"""Offline trace analysis: flow sizes, rank-size curves, exact top-k.

This is the "off-line analysis" of the paper (Sec. V-B): the ground
truth against which the AFD's contents are scored.  A flow found in the
AFC that is *not* in the offline top-16 is a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.trace import Trace
from repro.util.stats import gini

__all__ = [
    "flow_sizes",
    "rank_size",
    "top_k_flows",
    "windowed_top_k",
    "concentration",
    "RankSize",
]


def flow_sizes(trace: Trace, by: str = "bytes") -> np.ndarray:
    """Per-flow totals indexed by flow id.

    ``by`` selects bytes (Fig. 2's metric) or packet counts.  Flows in
    the table that never appear in the packet stream get 0.
    """
    if by == "bytes":
        weights = trace.size_bytes.astype(np.int64)
    elif by == "packets":
        weights = None
    else:
        raise ValueError(f"by must be 'bytes' or 'packets', got {by!r}")
    return np.bincount(trace.flow_id, weights=weights, minlength=trace.num_flows).astype(
        np.int64
    )


@dataclass(frozen=True)
class RankSize:
    """A rank-size curve: ``sizes[r-1]`` is the size of the rank-*r* flow."""

    sizes: np.ndarray
    by: str

    @property
    def num_flows(self) -> int:
        return int(self.sizes.shape[0])

    def share_of_top(self, k: int) -> float:
        """Fraction of total volume carried by the top-*k* flows."""
        total = float(self.sizes.sum())
        if total == 0:
            return 0.0
        return float(self.sizes[:k].sum()) / total


def rank_size(trace: Trace, by: str = "bytes", drop_zero: bool = True) -> RankSize:
    """The Fig. 2 curve: flow sizes sorted descending (rank 1 first)."""
    sizes = np.sort(flow_sizes(trace, by=by))[::-1]
    if drop_zero:
        sizes = sizes[sizes > 0]
    return RankSize(sizes=sizes, by=by)


def top_k_flows(trace: Trace, k: int, by: str = "bytes") -> list[int]:
    """Flow ids of the *k* largest flows, ties broken by lower id.

    This is the offline ground truth for AFD accuracy (Fig. 8).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    sizes = flow_sizes(trace, by=by)
    k = min(k, int((sizes > 0).sum()))
    if k == 0:
        return []
    # stable sort on (-size, id): argsort of -sizes is stable w.r.t. id order
    order = np.argsort(-sizes, kind="stable")
    return [int(i) for i in order[:k]]


def windowed_top_k(
    trace: Trace, k: int, window: int, by: str = "bytes"
) -> list[tuple[int, list[int]]]:
    """Top-*k* flows per consecutive *window*-packet slice.

    Returns ``[(end_index, top_ids), ...]`` — used by the Fig. 8(b)
    experiment, where the AFC is scored at fixed packet intervals
    against the recently active elephants.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    out: list[tuple[int, list[int]]] = []
    n = trace.num_packets
    for start in range(0, n, window):
        end = min(start + window, n)
        fid = trace.flow_id[start:end]
        if by == "bytes":
            sizes = np.bincount(
                fid, weights=trace.size_bytes[start:end].astype(np.int64),
                minlength=trace.num_flows,
            )
        else:
            sizes = np.bincount(fid, minlength=trace.num_flows)
        kk = min(k, int((sizes > 0).sum()))
        order = np.argsort(-sizes, kind="stable")
        out.append((end, [int(i) for i in order[:kk]]))
    return out


def concentration(trace: Trace, by: str = "bytes") -> dict[str, float]:
    """Skew summary of a trace: gini, top-k shares, active flow count.

    A quick fingerprint used by tests to check the synthetic presets
    actually exhibit the heavy tail the paper's motivation needs.
    """
    curve = rank_size(trace, by=by)
    if curve.num_flows == 0:
        return {"active_flows": 0.0, "gini": 0.0, "top1_share": 0.0,
                "top10_share": 0.0, "top16_share": 0.0, "top100_share": 0.0}
    return {
        "active_flows": float(curve.num_flows),
        "gini": gini(curve.sizes),
        "top1_share": curve.share_of_top(1),
        "top10_share": curve.share_of_top(10),
        "top16_share": curve.share_of_top(16),
        "top100_share": curve.share_of_top(100),
    }
