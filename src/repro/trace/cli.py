"""Trace tooling CLI: ``python -m repro.trace``.

Subcommands:

* ``generate <preset> <out.npz>`` — materialise a synthetic preset;
* ``convert <in.pcap[.gz]> <out.npz>`` — ingest a capture;
* ``analyze <trace.npz | preset-name>`` — print the flow-skew summary
  and the top flows (the offline analysis of Sec. V-B);
* ``export-pcap <trace.npz | preset-name> <out.pcap[.gz]>`` — write a
  trace back out as a capture (header-only frames).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.trace.analysis import concentration, flow_sizes, top_k_flows
from repro.trace.pcap import trace_from_pcap, write_pcap
from repro.trace.synthetic import PRESETS, preset_trace
from repro.trace.trace import Trace
from repro.util.tables import format_table

__all__ = ["main"]


def _load(spec: str) -> Trace:
    """A trace from an .npz path or a preset name."""
    if spec in PRESETS:
        return preset_trace(spec)
    path = Path(spec)
    return Trace.load_npz(path)


def _cmd_generate(args) -> int:
    trace = preset_trace(args.preset, num_packets=args.packets)
    trace.save_npz(args.out)
    print(f"wrote {args.out}: {trace.num_packets} packets, "
          f"{trace.num_flows} flows")
    return 0


def _cmd_convert(args) -> int:
    trace, counters = trace_from_pcap(args.pcap)
    trace.save_npz(args.out)
    print(f"parsed {counters['total']} frames "
          f"({counters['ipv4']} IPv4, {counters['tcp_udp']} TCP/UDP)")
    print(f"wrote {args.out}: {trace.num_packets} packets, "
          f"{trace.num_flows} flows")
    return 0


def _cmd_analyze(args) -> int:
    trace = _load(args.trace)
    stats = concentration(trace, by=args.by)
    print(format_table(
        ["metric", "value"],
        [[k, round(v, 4)] for k, v in stats.items()],
        title=f"{trace.name or args.trace}: {trace.num_packets} packets, "
              f"{trace.num_flows} flows",
    ))
    sizes = flow_sizes(trace, by=args.by)
    top = top_k_flows(trace, args.top, by=args.by)
    rows = [
        [rank + 1, fid, int(sizes[fid]), str(trace.five_tuple(fid))]
        for rank, fid in enumerate(top)
    ]
    print()
    print(format_table(
        ["rank", "flow", args.by, "5-tuple"],
        rows,
        title=f"top {args.top} flows by {args.by}",
    ))
    return 0


def _cmd_export_pcap(args) -> int:
    trace = _load(args.trace)
    t_ns = 0
    packets = []
    for i in range(trace.num_packets):
        t_ns += int(trace.gap_ns[i])
        packets.append(
            (t_ns, trace.five_tuple(int(trace.flow_id[i])),
             int(trace.size_bytes[i]))
        )
    write_pcap(args.out, packets)
    print(f"wrote {args.out}: {len(packets)} frames")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="materialise a synthetic preset")
    gen.add_argument("preset", choices=sorted(PRESETS))
    gen.add_argument("out", type=Path)
    gen.add_argument("--packets", type=int, default=None)
    gen.set_defaults(func=_cmd_generate)

    conv = sub.add_parser("convert", help="pcap(.gz) -> trace npz")
    conv.add_argument("pcap", type=Path)
    conv.add_argument("out", type=Path)
    conv.set_defaults(func=_cmd_convert)

    ana = sub.add_parser("analyze", help="flow-skew summary + top flows")
    ana.add_argument("trace", help="an .npz path or a preset name")
    ana.add_argument("--by", choices=("bytes", "packets"), default="bytes")
    ana.add_argument("--top", type=int, default=16)
    ana.set_defaults(func=_cmd_analyze)

    exp = sub.add_parser("export-pcap", help="trace -> pcap(.gz)")
    exp.add_argument("trace", help="an .npz path or a preset name")
    exp.add_argument("out", type=Path)
    exp.set_defaults(func=_cmd_export_pcap)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
