"""``python -m repro.trace`` — see :mod:`repro.trace.cli`."""

from repro.trace.cli import main

raise SystemExit(main())
