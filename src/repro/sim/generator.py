"""Traffic-rate modelling and arrival generation — paper Sec. IV-C1.

Per-service traffic rate follows the Holt-Winters-style model of eq. (1):

    x_i(t) = a + b*t + C*S(t % m) + n(sigma)

with ``a`` the baseline, ``b`` the linear trend, ``C`` the magnitude of
the seasonal shape ``S`` (period ``m``), and ``n`` zero-mean Gaussian
noise.  The paper leaves ``S`` unspecified; we use the canonical
unit-amplitude sinusoid.  Rates are clamped at a small positive floor —
eq. (1) can go negative for large sigma, which is unphysical.

Arrivals are an inhomogeneous Poisson process realised piecewise: the
duration is cut into short segments, the rate is sampled (with noise)
once per segment, a Poisson count is drawn, and arrival instants fall
uniformly within the segment.  This is exact for piecewise-constant
rates and fully vectorised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigError
from repro.util.rng import make_rng

__all__ = [
    "HoltWintersParams", "HoltWinters", "ArrivalStream", "arrival_times",
    "build_rate_model",
]


@dataclass(frozen=True)
class HoltWintersParams:
    """One service's row of Table IV.

    Units follow the paper: rates (``a``, ``b``-slope, ``C``, ``sigma``)
    in packets/second; the seasonal period ``m`` in seconds.  ``b`` is
    the rate *increase per second*.
    """

    a: float
    b: float = 0.0
    c: float = 0.0
    m: float = 1.0
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.a < 0:
            raise ConfigError(f"baseline rate must be >= 0, got {self.a}")
        if self.m <= 0:
            raise ConfigError(f"seasonal period must be positive, got {self.m}")
        if self.sigma < 0:
            raise ConfigError(f"noise sigma must be >= 0, got {self.sigma}")

    def scaled(self, factor: float) -> "HoltWintersParams":
        """All rate-dimension terms scaled by *factor* (period kept)."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return HoltWintersParams(
            self.a * factor, self.b * factor, self.c * factor, self.m, self.sigma * factor
        )


class HoltWinters:
    """Evaluator for the eq. (1) rate model."""

    #: Clamp floor as a fraction of the baseline ``a`` (rates never go
    #: fully to zero so inter-arrival generation stays well-defined).
    FLOOR_FRACTION = 0.01

    def __init__(self, params: HoltWintersParams) -> None:
        self.params = params

    def mean_rate(self, t_s: float) -> float:
        """Deterministic part of x(t) at *t_s* seconds (no noise)."""
        p = self.params
        seasonal = p.c * math.sin(2.0 * math.pi * (t_s % p.m) / p.m)
        return max(p.a * self.FLOOR_FRACTION, p.a + p.b * t_s + seasonal)

    def mean_rate_batch(self, t_s: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`mean_rate`."""
        p = self.params
        t_s = np.asarray(t_s, dtype=np.float64)
        seasonal = p.c * np.sin(2.0 * np.pi * np.mod(t_s, p.m) / p.m)
        return np.maximum(p.a * self.FLOOR_FRACTION, p.a + p.b * t_s + seasonal)

    def sample_rates(
        self,
        t_s: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """x(t) with the noise term drawn per evaluation point."""
        rng = make_rng(rng)
        base = self.mean_rate_batch(t_s)
        if self.params.sigma > 0:
            base = base + rng.normal(0.0, self.params.sigma, size=base.shape)
        return np.maximum(self.params.a * self.FLOOR_FRACTION, base)

    def average_rate(self, duration_s: float, samples: int = 512) -> float:
        """Time-average of the deterministic rate over ``[0, duration_s]``
        (used to calibrate offered load to a target utilisation)."""
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {duration_s}")
        t = np.linspace(0.0, duration_s, samples, endpoint=False)
        return float(self.mean_rate_batch(t).mean())

    def segment_hint_s(self) -> float:
        """Characteristic time scale of the rate process, in seconds.

        :class:`ArrivalStream` discretises at 1/50 of this (bounded to
        [100 us, 10 ms]) so the rate shape is well resolved.  For the
        eq. (1) model the scale is the seasonal period ``m``.
        """
        return self.params.m


def build_rate_model(params):
    """Build the rate-model evaluator for a per-service params object.

    :class:`HoltWintersParams` maps to :class:`HoltWinters` (the
    historical behaviour); any other params type must expose a
    ``build()`` method returning an evaluator with the same protocol
    (``sample_rates``, ``mean_rate_batch``, ``average_rate``,
    ``segment_hint_s``) — see :mod:`repro.workloads.arrivals` for the
    MMPP and diurnal models.  Both :func:`repro.sim.workload.build_workload`
    and :class:`repro.sim.source.StreamingSource` route through this
    dispatcher, which is what keeps streamed and materialized
    generation bit-identical for every model family.
    """
    if isinstance(params, HoltWintersParams):
        return HoltWinters(params)
    build = getattr(params, "build", None)
    if callable(build):
        return build()
    raise ConfigError(
        f"unsupported rate params type {type(params).__name__}: expected "
        "HoltWintersParams or an object with a build() method"
    )


class ArrivalStream:
    """Incremental realisation of one service's arrival process.

    Draws the *same* random variates in the *same* order as the
    whole-horizon :func:`arrival_times` — all per-segment rates, then
    all Poisson counts, up front (both are O(n_segments), tiny), with
    the per-arrival uniforms drawn lazily one segment at a time — so
    concatenating :meth:`next_segment` over every segment is
    bit-identical to the :func:`arrival_times` array while holding only
    one segment's arrivals in memory.

    Segment arrivals lie in ``[start, next start)`` strictly, so a
    per-segment sort concatenates into the globally sorted sequence and
    :meth:`pending_floor_ns` is a hard lower bound on every arrival not
    yet realised (the safe merge horizon for
    :class:`repro.sim.source.StreamingSource`).

    The cursor is resumable: :meth:`state` / :meth:`set_state` capture
    the segment index plus the generator's bit-generator state.
    """

    __slots__ = (
        "_rng", "_segment_ns", "_duration_ns", "_counts", "_lengths_ns",
        "n_segments", "total", "_next_segment",
    )

    def __init__(
        self,
        model: HoltWinters,
        duration_ns: int,
        rng: np.random.Generator | int | None = None,
        segment_ns: int | None = None,
    ) -> None:
        if duration_ns <= 0:
            raise ConfigError(f"duration must be positive, got {duration_ns}")
        rng = make_rng(rng)
        if segment_ns is None:
            hint_s = float(model.segment_hint_s())
            segment_ns = min(
                units.ms(10), max(units.us(100), int(hint_s * units.SEC / 50))
            )
        n_segments = (duration_ns + segment_ns - 1) // segment_ns
        starts_ns = np.arange(n_segments, dtype=np.int64) * segment_ns
        lengths_ns = np.minimum(segment_ns, duration_ns - starts_ns)
        rates = model.sample_rates(starts_ns / units.SEC, rng)
        expected = rates * (lengths_ns / units.SEC)
        self._rng = rng
        self._segment_ns = int(segment_ns)
        self._duration_ns = int(duration_ns)
        self._counts = rng.poisson(expected)
        self._lengths_ns = lengths_ns
        self.n_segments = int(n_segments)
        self.total = int(self._counts.sum())
        self._next_segment = 0

    @property
    def exhausted(self) -> bool:
        return self._next_segment >= self.n_segments

    def pending_floor_ns(self) -> int:
        """Lower bound on every arrival not yet realised (the start of
        the next unrealised segment)."""
        return self._next_segment * self._segment_ns

    def next_segment(self) -> np.ndarray:
        """Sorted int64 arrivals of the next segment (possibly empty)."""
        j = self._next_segment
        if j >= self.n_segments:
            raise ConfigError("arrival stream is exhausted")
        self._next_segment = j + 1
        count = int(self._counts[j])
        if count == 0:
            return np.empty(0, dtype=np.int64)
        start = j * self._segment_ns
        offsets = self._rng.random(count) * int(self._lengths_ns[j])
        times = start + offsets.astype(np.int64)
        times.sort(kind="stable")
        return times

    def state(self) -> dict:
        """Picklable cursor (segment index + generator bit state)."""
        return {
            "segment": self._next_segment,
            "rng": self._rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        """Restore a cursor captured by :meth:`state` on an equally
        constructed stream (same model/duration/seed)."""
        self._next_segment = int(state["segment"])
        self._rng.bit_generator.state = state["rng"]


def arrival_times(
    model: HoltWinters,
    duration_ns: int,
    rng: np.random.Generator | int | None = None,
    segment_ns: int | None = None,
) -> np.ndarray:
    """Sorted arrival instants (int64 ns) of an inhomogeneous Poisson
    process driven by *model* over ``[0, duration_ns)``.

    ``segment_ns`` controls the piecewise-constant discretisation;
    default is 1/50 of the seasonal period (capped at 10 ms) so the
    seasonal shape is well resolved.  Realised through
    :class:`ArrivalStream`, whose chunked draws are bit-identical to
    the historical whole-horizon generation.
    """
    stream = ArrivalStream(model, duration_ns, rng, segment_ns)
    if stream.total == 0:
        return np.empty(0, dtype=np.int64)
    segments = [stream.next_segment() for _ in range(stream.n_segments)]
    return np.concatenate(segments)
