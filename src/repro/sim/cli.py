"""Simulation CLI: ``python -m repro.sim``.

Run a scheduler comparison from the command line without writing a
script:

    python -m repro.sim compare --trace caida-1 --cores 16 \\
        --utilisation 1.05 --schedulers fcfs afs laps

    python -m repro.sim compare --pcap capture.pcap.gz --duration-ms 10

    python -m repro.sim compare --telemetry out/   # + NDJSON time series

    python -m repro.sim compare --faults chaos.json --drain-policy drop

Single-service by default (IP forwarding); ``--multiservice`` runs the
four-service edge router with the default classifier splitting the
trace.  ``--telemetry DIR`` attaches a :class:`repro.obs.TelemetryProbe`
to every run and dumps manifest + report + series per scheduler.
``--faults SPEC`` injects the fault schedule serialised in SPEC (a JSON
file, see ``docs/faults.md``) into every run and appends per-scheduler
resilience columns to the comparison.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import units
from repro.core.laps import LAPSConfig, LAPSScheduler
from repro.obs import RunManifest, TelemetryProbe, write_run
from repro.net.classifier import default_edge_rules
from repro.net.service import Service, ServiceSet, default_services
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.base import Scheduler, available_schedulers, make_scheduler
from repro.sim.config import SimConfig
from repro.sim.engine import available_engines, resolve_engine
from repro.sim.generator import HoltWintersParams
from repro.sim.source import DEFAULT_CHUNK_SIZE, StreamingSource
from repro.sim.system import simulate
from repro.sim.workload import build_workload
from repro.trace.models import TRIMODAL_INTERNET_SIZES
from repro.trace.pcap import trace_from_pcap
from repro.trace.synthetic import PRESETS
from repro.trace.trace import Trace
from repro.util.tables import format_table
from repro.workloads.registry import make_workload, workload_preset_names
from repro.workloads.traces import CDF_TRACE_PRESETS, resolve_trace

__all__ = ["main"]


def _make_sched(name: str, num_services: int, seed: int) -> Scheduler:
    if name == "laps":
        return LAPSScheduler(LAPSConfig(num_services=num_services), rng=seed)
    if name == "afs":
        return AFSScheduler(cooldown_ns=units.us(100))
    return make_scheduler(name)


def _load_trace(args) -> Trace:
    if args.pcap:
        trace, counters = trace_from_pcap(args.pcap)
        print(f"[pcap] {counters['total']} frames, "
              f"{trace.num_packets} usable packets")
        return trace
    if args.trace in PRESETS or args.trace in CDF_TRACE_PRESETS:
        return resolve_trace(args.trace, num_packets=args.packets)
    return Trace.load_npz(args.trace)


def _registry_workload(args):
    """Build a named registry workload (``--workload``); returns
    (workload, services, num_services, mode label)."""
    duration = units.ms(args.duration_ms)
    workload = make_workload(
        args.workload,
        num_cores=args.cores,
        utilisation=args.utilisation,
        duration_ns=duration,
        trace_packets=args.packets,
        seed=args.seed,
        stream=args.stream,
        chunk_size=args.chunk_size,
    )
    if workload.num_services == len(default_services()):
        services = default_services()
    else:  # pcap replay presets are single-service
        services = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    mode = (f"streamed in {args.chunk_size}-packet chunks"
            if args.stream else "materialized")
    return workload, services, workload.num_services, mode


def _cmd_compare(args) -> int:
    if args.workload:
        workload, services, num_services, mode = _registry_workload(args)
        trace_label = args.workload
        duration = units.ms(args.duration_ms)
        config = SimConfig(num_cores=args.cores, services=services,
                           queue_capacity=args.queue_depth,
                           collect_latencies=True)
        print(f"[workload] preset {args.workload!r}: "
              f"{workload.num_packets} packets over "
              f"{workload.duration_ns / 1e6:.1f} ms on {args.cores} cores "
              f"(target utilisation {args.utilisation:.2f}, {mode})\n")
        return _run_comparison(args, workload, config, num_services,
                               duration, trace_label)

    trace = _load_trace(args)
    duration = units.ms(args.duration_ms)
    mean_size = float(trace.size_bytes.mean()) if trace.num_packets else \
        TRIMODAL_INTERNET_SIZES.mean

    if args.services:
        # N replicated generic services, each offered the full trace at
        # its slice of platform capacity — the shape of the large-scale
        # scenarios (e.g. --cores 120 --services 8 --shards 8)
        services = ServiceSet([
            Service(i, f"svc{i}", units.us(0.5))
            for i in range(args.services)
        ])
        per = max(1, args.cores // args.services)
        traces = [trace] * args.services
        params = [
            HoltWintersParams(
                a=args.utilisation * per * svc.capacity_pps(mean_size)
            )
            for svc in services
        ]
        num_services = args.services
    elif args.multiservice:
        services = default_services()
        parts = default_edge_rules().split_trace(trace)
        per = max(1, args.cores // len(services))
        traces, params = [], []
        for sid, part in enumerate(parts):
            if part.num_packets == 0:
                part = trace  # fall back so every service has headers
            traces.append(part)
            cap = per * services[sid].capacity_pps(mean_size)
            params.append(HoltWintersParams(a=args.utilisation * cap))
        num_services = len(services)
    else:
        services = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
        cap = services.capacity_pps([args.cores], mean_size)
        traces = [trace]
        params = [HoltWintersParams(a=args.utilisation * cap)]
        num_services = 1

    if args.stream:
        workload = StreamingSource(
            traces, params, duration, seed=args.seed,
            chunk_size=args.chunk_size,
        )
        mode = f"streamed in {args.chunk_size}-packet chunks"
    else:
        workload = build_workload(traces, params, duration_ns=duration,
                                  seed=args.seed)
        mode = "materialized"
    config = SimConfig(num_cores=args.cores, services=services,
                       queue_capacity=args.queue_depth,
                       collect_latencies=True)
    print(f"[workload] {workload.num_packets} packets over "
          f"{args.duration_ms} ms on {args.cores} cores "
          f"(target utilisation {args.utilisation:.2f}, {mode})\n")
    return _run_comparison(args, workload, config, num_services, duration,
                           getattr(trace, "name", None))


def _run_comparison(args, workload, config, num_services, duration,
                    trace_label) -> int:
    sharded = args.shards is not None and args.shards > 1
    schedule = None
    platform_schedule = None
    if args.faults:
        from repro.faults import (
            FaultInjector,
            FaultSchedule,
            TrafficTransformSource,
            apply_traffic_events,
            compute_resilience,
        )
        schedule = FaultSchedule.from_json(Path(args.faults))
        if args.stream:
            workload = TrafficTransformSource(workload, schedule)
        else:
            workload = apply_traffic_events(workload, schedule)
        platform = [ev for ev in schedule.events if ev.kind == "platform"]
        if platform:
            platform_schedule = FaultSchedule(platform)
        print(f"[faults] {len(schedule)} events from {args.faults} "
              f"(drain policy: {args.drain_policy})\n")

    engine_spec = resolve_engine(args.engine)
    if engine_spec.fallback_reason:
        print(f"[engine] {engine_spec.requested!r} unavailable "
              f"({engine_spec.fallback_reason}); running {engine_spec.name!r}\n")
    if sharded:
        from repro.sim.sharding import run_sharded
        window_ns = (
            units.us(args.shard_window_us)
            if args.shard_window_us is not None else None
        )
        print(f"[shards] {args.shards} shards over "
              f"{args.shard_workers or 'auto'} worker processes\n")
        if schedule is not None:
            # resilience columns come from the telemetry series and
            # probes sample global state — n/a on sharded runs
            print("[shards] telemetry probes are single-process only; "
                  "resilience columns omitted\n")
    telemetry_dir = Path(args.telemetry) if args.telemetry else None
    resilience_cols = schedule is not None and not sharded
    rows = []
    for name in args.schedulers:
        probe = None
        if not sharded and (telemetry_dir is not None or schedule is not None):
            # fault resilience is computed from the telemetry series,
            # so --faults implies a probe even without --telemetry
            probe = TelemetryProbe(units.us(args.probe_period_us))
        sched = _make_sched(name, num_services, args.seed)
        sharding_block = None
        if sharded:
            run = run_sharded(
                workload, sched, config,
                shards=args.shards, workers=args.shard_workers,
                window_ns=window_ns, schedule=platform_schedule,
                drain_policy=args.drain_policy, engine=args.engine,
            )
            rep = run.report
            sharding_block = run.manifest_dict()
        else:
            injector = None
            if schedule is not None:
                injector = FaultInjector(
                    schedule, drain_policy=args.drain_policy
                )
            rep = simulate(workload, sched, config, probe=probe,
                           injector=injector, engine=args.engine)
        if telemetry_dir is not None:
            manifest = RunManifest.capture(
                config=config,
                seed=args.seed,
                scheduler=name,
                engine=engine_spec.name,
                sharding=sharding_block,
                trace=trace_label,
                utilisation=args.utilisation,
                duration_ms=args.duration_ms,
                probe_period_us=args.probe_period_us,
                num_packets=workload.num_packets,
            )
            paths = write_run(
                telemetry_dir / name, report=rep, manifest=manifest,
                probe=probe, csv_mirror=args.telemetry_csv,
            )
            if probe is not None:
                print(f"[telemetry] {name}: {probe.num_samples} samples -> "
                      f"{paths['series'].parent}")
            else:
                print(f"[telemetry] {name}: manifest + report -> "
                      f"{paths['report'].parent} (no series: sharded)")
        row = [
            name, rep.dropped, f"{rep.drop_fraction:.2%}",
            rep.out_of_order, f"{rep.ooo_fraction:.3%}",
            f"{rep.cold_cache_fraction:.1%}",
            rep.flow_migration_events,
            f"{rep.latency_ns['p99'] / 1e3:.0f}",
        ]
        if resilience_cols:
            res = compute_resilience(
                probe.records, schedule, scheduler=name,
                arrivals_end_ns=duration,
            )
            rec = res.worst_recovery_ns
            row += [
                rep.fault_dropped, res.post_fault_ooo, res.flows_remapped,
                "yes" if res.recovered else "no",
                None if rec is None else f"{rec / 1e6:.2f}",
            ]
        elif schedule is not None:
            row += [rep.fault_dropped]
        rows.append(row)
    headers = ["scheduler", "dropped", "drop %", "ooo", "ooo %", "cold %",
               "migrations", "p99 us"]
    if resilience_cols:
        headers += ["fault drops", "post ooo", "remapped", "recovered",
                    "recover ms"]
    elif schedule is not None:
        headers += ["fault drops"]
    print(format_table(headers, rows, title="scheduler comparison"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser("compare", help="run schedulers on one workload")
    src = cmp_p.add_mutually_exclusive_group()
    src.add_argument("--trace", default="caida-1",
                     help="trace preset name (synthetic or CDF) or .npz path")
    src.add_argument("--pcap", type=Path, help="a pcap(.gz) capture")
    src.add_argument(
        "--workload", metavar="NAME", default=None,
        help="named workload preset from the registry "
             f"({', '.join(workload_preset_names())}) or pcap:<path>; "
             "see docs/workloads.md",
    )
    cmp_p.add_argument("--packets", type=int, default=100_000,
                       help="packets when generating a preset")
    cmp_p.add_argument("--cores", type=int, default=16)
    cmp_p.add_argument("--queue-depth", type=int, default=32)
    cmp_p.add_argument("--utilisation", type=float, default=1.05)
    cmp_p.add_argument("--duration-ms", type=float, default=10.0)
    cmp_p.add_argument("--seed", type=int, default=7)
    cmp_p.add_argument("--multiservice", action="store_true",
                       help="classify into the 4 edge-router services")
    cmp_p.add_argument(
        "--services", type=int, default=0, metavar="N",
        help="run N replicated generic services instead (overrides "
             "--multiservice; pairs with --cores/--shards for "
             "large-scale scenarios)",
    )
    cmp_p.add_argument(
        "--schedulers", nargs="+", default=["hash-static", "afs", "laps"],
        choices=available_schedulers(),
    )
    cmp_p.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="dump manifest + report + NDJSON probe series per scheduler "
             "into DIR/<scheduler>/ (see docs/simulator.md, Telemetry)",
    )
    cmp_p.add_argument(
        "--probe-period-us", type=float, default=100.0,
        help="telemetry sampling period in microseconds (default 100)",
    )
    cmp_p.add_argument(
        "--telemetry-csv", action="store_true",
        help="also mirror the probe series as series.csv",
    )
    cmp_p.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject the fault schedule in SPEC (JSON file; see "
             "docs/faults.md) and report resilience per scheduler",
    )
    cmp_p.add_argument(
        "--drain-policy", choices=("drop", "reassign"), default="drop",
        help="fate of a failing core's queued descriptors (default: drop)",
    )
    cmp_p.add_argument(
        "--engine", choices=available_engines(), default=None,
        help="event core: heap (scalar oracle, default), calendar "
             "(batched numpy span drain) or calendar-numba (compiled; "
             "falls back to calendar when numba is absent). Reports are "
             "bit-identical across engines; see docs/performance.md",
    )
    cmp_p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the system N ways across worker processes "
             "(static-map schedulers: bit-identical to single-process; "
             "laps: deterministic in seed/window/shards; see "
             "docs/architecture.md, Sharded execution)",
    )
    cmp_p.add_argument(
        "--shard-workers", type=int, default=0, metavar="N",
        help="worker processes for --shards (0 = auto, REPRO_JOBS aware)",
    )
    cmp_p.add_argument(
        "--shard-window-us", type=float, default=None,
        help="services-mode barrier window in microseconds "
             "(default 1000; only laps uses it)",
    )
    cmp_p.add_argument(
        "--stream", action="store_true",
        help="generate the workload chunk by chunk (bounded memory, "
             "bit-identical results; see docs/simulator.md)",
    )
    cmp_p.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help=f"packets per streamed chunk (default {DEFAULT_CHUNK_SIZE}; "
             "needs --stream)",
    )
    cmp_p.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
