"""A calendar queue with the exact ``(time_ns, seq)`` total order.

R. Brown's calendar queue hashes events into time buckets ("days") of a
fixed width; each bucket keeps its events sorted, and the earliest
pending event is found by comparing bucket heads instead of sifting a
binary heap.  Two properties make the structure a drop-in replacement
for :class:`~repro.sim.events.base.EventQueue`:

* **identical ordering contract** — events pop in strict
  ``(time_ns, seq)`` order with the same monotone-``seq`` tie-breaking,
  so a calendar run replays a heap run event for event (the hypothesis
  suite in ``tests/sim/test_events_calendar.py`` pins this against the
  heapq oracle, ties and mid-stream ``clear()`` included);
* **cheap "anything due?" peek** — :attr:`next_ref` is a one-element
  list holding the earliest pending time (or ``_INF``), maintained on
  every mutation, so the kernel's arrival loop tests
  ``next_ref[0] <= t`` without a method call (the heap engine gets the
  same property from ``heap[0][0]``).

The classic calendar-queue win (O(1) amortised operations) matters for
large event populations; this simulator's population is tiny — one
completion per busy core plus the fault injector's timed events — so
the implementation favours exactness and simple invariants: all events
with the minimum time share one bucket (same time ⇒ same bucket), that
bucket is sorted, hence its head *is* the global minimum and a pop is a
bucket-head scan plus a front removal.  The packet-rate win of the
calendar engines comes from the batched span drain in
:mod:`repro.sim.events.span`, which bypasses the pending structure
entirely for in-span completions.

The bucket count adapts (doubling/halving redistributions) so the
head scan stays proportional to the live population, not to a fixed
table size.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Iterator

from repro.errors import SimulationError
from repro.sim.events.base import EventSnapshot

__all__ = ["CalendarEventQueue"]

#: sentinel "no pending event" time (far beyond any simulated horizon)
_INF = 1 << 62

_MIN_BUCKETS = 8


class CalendarEventQueue:
    """Bucketed time-ordered event queue, heap-contract compatible."""

    __slots__ = (
        "_buckets",
        "_nb",
        "_width",
        "_size",
        "_seq",
        "_last_pop_ns",
        "popped",
        "next_ref",
    )

    def __init__(self, *, width_ns: int = 1024, num_buckets: int = _MIN_BUCKETS) -> None:
        if width_ns <= 0:
            raise SimulationError(f"bucket width must be positive, got {width_ns}")
        if num_buckets < 1:
            raise SimulationError(f"need at least one bucket, got {num_buckets}")
        self._buckets: list[list[tuple[int, int, Any]]] = [
            [] for _ in range(num_buckets)
        ]
        self._nb = num_buckets
        self._width = width_ns
        self._size = 0
        self._seq = 0
        self._last_pop_ns = -1
        #: lifetime count of popped events (profiling signal)
        self.popped = 0
        #: one-element list: earliest pending time_ns, or ``_INF`` when
        #: empty — closures bind the list once and read ``next_ref[0]``
        self.next_ref: list[int] = [_INF]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    def _bucket_of(self, time_ns: int) -> list[tuple[int, int, Any]]:
        return self._buckets[(time_ns // self._width) % self._nb]

    def _rescan_next(self) -> None:
        """Recompute ``next_ref[0]`` from the bucket heads.

        Same time ⇒ same bucket, so exactly one bucket head attains the
        minimum time and no seq comparison is needed across buckets.
        """
        nxt = _INF
        for b in self._buckets:
            if b and b[0][0] < nxt:
                nxt = b[0][0]
        self.next_ref[0] = nxt

    def _resize(self, nb: int) -> None:
        entries = [e for b in self._buckets for e in b]
        self._nb = nb
        self._buckets = [[] for _ in range(nb)]
        width = self._width
        for e in entries:
            insort(self._buckets[(e[0] // width) % nb], e)

    # ------------------------------------------------------------------
    def push(self, time_ns: int, payload: Any) -> None:
        """Schedule *payload* at *time_ns*.

        Scheduling into the past (before the last popped event) is a
        causality violation and raises :class:`SimulationError`.
        """
        if time_ns < self._last_pop_ns:
            raise SimulationError(
                f"event scheduled at {time_ns} ns, before current time "
                f"{self._last_pop_ns} ns"
            )
        # the new seq exceeds every pending one, so on a time tie the
        # incumbent minimum keeps winning: a plain min suffices
        insort(self._bucket_of(time_ns), (time_ns, self._seq, payload))
        self._seq += 1
        self._size += 1
        if time_ns < self.next_ref[0]:
            self.next_ref[0] = time_ns
        if self._size > 2 * self._nb:
            self._resize(2 * self._nb)

    def peek_time(self) -> int | None:
        """Timestamp of the next event, or None when empty."""
        return self.next_ref[0] if self._size else None

    @property
    def now_ns(self) -> int:
        """Time of the last popped event (-1 before the first pop) —
        the earliest instant a new event may be scheduled at."""
        return self._last_pop_ns

    def pop(self) -> tuple[int, Any]:
        """Remove and return ``(time_ns, payload)`` of the next event."""
        if not self._size:
            raise SimulationError("pop from an empty event queue")
        bucket = self._bucket_of(self.next_ref[0])
        time_ns, _, payload = bucket.pop(0)
        self._size -= 1
        self._last_pop_ns = time_ns
        self.popped += 1
        if bucket and bucket[0][0] == time_ns:
            self.next_ref[0] = time_ns  # more ties pending in place
        else:
            self._rescan_next()
        if self._size < self._nb // 4 and self._nb > _MIN_BUCKETS:
            self._resize(self._nb // 2)
        return time_ns, payload

    def pop_until(self, horizon_ns: int) -> Iterator[tuple[int, Any]]:
        """Yield events with ``time <= horizon_ns`` in order.

        The caller may push new events while iterating (a completion
        starting the next packet); newly pushed events inside the
        horizon are yielded too.
        """
        while self._size and self.next_ref[0] <= horizon_ns:
            yield self.pop()

    def clear(self) -> None:
        """Reset to the freshly constructed state (tie-break counter
        included — see :meth:`EventQueue.clear`)."""
        for b in self._buckets:
            b.clear()
        self._size = 0
        self._seq = 0
        self._last_pop_ns = -1
        self.popped = 0
        self.next_ref[0] = _INF

    # -- engine-independent checkpoint form ----------------------------
    def entries(self) -> list[tuple[int, int, Any]]:
        """Pending events sorted by ``(time_ns, seq)`` (a copy)."""
        out = [e for b in self._buckets for e in b]
        out.sort(key=lambda e: (e[0], e[1]))
        return out

    def snapshot(self) -> EventSnapshot:
        """Freeze the queue into an :class:`EventSnapshot`."""
        return EventSnapshot(
            entries=tuple(self.entries()),
            seq=self._seq,
            last_pop_ns=self._last_pop_ns,
            popped=self.popped,
        )

    @classmethod
    def from_snapshot(cls, snap: EventSnapshot) -> "CalendarEventQueue":
        """Rebuild a queue replaying *snap* exactly."""
        q = cls()
        q.reset_entries(
            list(snap.entries),
            seq=snap.seq,
            last_pop_ns=snap.last_pop_ns,
            popped_delta=snap.popped,
        )
        return q

    def reset_entries(
        self,
        entries: list[tuple[int, int, Any]],
        *,
        seq: int,
        last_pop_ns: int,
        popped_delta: int,
    ) -> None:
        """Replace the pending set wholesale (the span drain's commit).

        See :meth:`EventQueue.reset_entries` for the contract.
        """
        for b in self._buckets:
            b.clear()
        nb = self._nb
        while len(entries) > 2 * nb:
            nb *= 2
        if nb != self._nb:
            self._nb = nb
            self._buckets = [[] for _ in range(nb)]
        width = self._width
        for e in entries:
            insort(self._buckets[(e[0] // width) % nb], e)
        self._size = len(entries)
        self._seq = seq
        self._last_pop_ns = last_pop_ns
        self.popped += popped_delta
        self._rescan_next()
