"""A minimal discrete-event core: a monotone event heap.

Events are ``(time_ns, seq, payload)`` tuples in a binary heap; ``seq``
is a monotonically increasing tiebreaker so simultaneous events pop in
insertion order (deterministic) and payloads are never compared.  The
simulator's hot loop pushes one completion event per packet, so the
engine is deliberately tuple-based — no Event objects, no allocation
beyond the tuple itself (per the HPC guidance: keep the inner loop free
of attribute lookups).

:class:`EventSnapshot` is the engine-independent serialized form every
queue implementation can produce and restore from — checkpoint blob v4
stores snapshots instead of live queues, so a run checkpointed under
one engine resumes bit-identically under another (the snapshot carries
the exact ``(time, seq)`` pairs, the tie-break counter and the pop
bookkeeping, which is everything ordering-relevant).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import SimulationError

__all__ = ["EventQueue", "EventSnapshot"]


@dataclass(frozen=True)
class EventSnapshot:
    """Engine-independent image of a paused event queue.

    ``entries`` is the pending set sorted by ``(time_ns, seq)`` — the
    exact pop order any conforming implementation will replay — plus
    the tie-break counter, the last pop time (causality floor) and the
    lifetime pop count.
    """

    entries: tuple[tuple[int, int, Any], ...]
    seq: int
    last_pop_ns: int
    popped: int


class EventQueue:
    """Time-ordered event heap with deterministic tie-breaking."""

    __slots__ = ("_heap", "_seq", "_last_pop_ns", "popped")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0
        self._last_pop_ns = -1
        #: lifetime count of popped events (profiling signal)
        self.popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time_ns: int, payload: Any) -> None:
        """Schedule *payload* at *time_ns*.

        Scheduling into the past (before the last popped event) is a
        causality violation and raises :class:`SimulationError`.
        """
        if time_ns < self._last_pop_ns:
            raise SimulationError(
                f"event scheduled at {time_ns} ns, before current time "
                f"{self._last_pop_ns} ns"
            )
        heapq.heappush(self._heap, (time_ns, self._seq, payload))
        self._seq += 1

    def peek_time(self) -> int | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def heap(self) -> list[tuple[int, int, Any]]:
        """The raw heap list, for compiled consumers that inline
        ``heapq.heappop`` and batch the bookkeeping through
        :meth:`flush_pops`.  Treat as read-and-heappop-only."""
        return self._heap

    def flush_pops(self, count: int, last_pop_ns: int) -> None:
        """Record *count* events popped directly off :attr:`heap`, the
        last at *last_pop_ns*.  Callers must flush before anything that
        reads :attr:`popped` / :attr:`now_ns` or pushes new events."""
        self.popped += count
        self._last_pop_ns = last_pop_ns

    @property
    def now_ns(self) -> int:
        """Time of the last popped event (-1 before the first pop) —
        the earliest instant a new event may be scheduled at."""
        return self._last_pop_ns

    def pop(self) -> tuple[int, Any]:
        """Remove and return ``(time_ns, payload)`` of the next event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time_ns, _, payload = heapq.heappop(self._heap)
        self._last_pop_ns = time_ns
        self.popped += 1
        return time_ns, payload

    def pop_until(self, horizon_ns: int) -> Iterator[tuple[int, Any]]:
        """Yield events with ``time <= horizon_ns`` in order.

        The caller may push new events while iterating (a completion
        starting the next packet); newly pushed events inside the
        horizon are yielded too.
        """
        while self._heap and self._heap[0][0] <= horizon_ns:
            yield self.pop()

    def clear(self) -> None:
        """Reset to the freshly constructed state.

        The tie-break counter restarts too: a cleared queue must replay
        a push sequence with the same (time, seq) pairs as a new one,
        otherwise two runs sharing a recycled queue would order
        simultaneous events differently.
        """
        self._heap.clear()
        self._seq = 0
        self._last_pop_ns = -1
        self.popped = 0

    # -- engine-independent checkpoint form ----------------------------
    def entries(self) -> list[tuple[int, int, Any]]:
        """Pending events sorted by ``(time_ns, seq)`` (a copy)."""
        # seqs are unique, so sorted() never compares payloads
        return sorted(self._heap, key=lambda e: (e[0], e[1]))

    def snapshot(self) -> EventSnapshot:
        """Freeze the queue into an :class:`EventSnapshot`."""
        return EventSnapshot(
            entries=tuple(self.entries()),
            seq=self._seq,
            last_pop_ns=self._last_pop_ns,
            popped=self.popped,
        )

    @classmethod
    def from_snapshot(cls, snap: EventSnapshot) -> "EventQueue":
        """Rebuild a queue replaying *snap* exactly (same pop order,
        same tie-break counter, same causality floor)."""
        q = cls()
        q._heap = list(snap.entries)
        heapq.heapify(q._heap)
        q._seq = snap.seq
        q._last_pop_ns = snap.last_pop_ns
        q.popped = snap.popped
        return q

    def reset_entries(
        self,
        entries: list[tuple[int, int, Any]],
        *,
        seq: int,
        last_pop_ns: int,
        popped_delta: int,
    ) -> None:
        """Replace the pending set wholesale (the span drain's commit).

        *entries* are ``(time_ns, seq, payload)`` tuples with caller-
        assigned seqs; *seq* is the new tie-break counter,
        *last_pop_ns* the new causality floor, *popped_delta* the
        number of events the span drained without individual pops.
        The heap list is replaced in place — compiled closures bind the
        raw list (:attr:`heap`) and must keep seeing the live contents.
        """
        self._heap[:] = entries
        heapq.heapify(self._heap)
        self._seq = seq
        self._last_pop_ns = last_pop_ns
        self.popped += popped_delta
