"""The event-core layer: queue implementations + batched span drain.

This package owns everything below the kernel's arrival loop:

* :mod:`repro.sim.events.base` — the binary-heap :class:`EventQueue`
  (the historical engine, still the default and the bit-identity
  oracle) and the engine-independent :class:`EventSnapshot` that
  checkpoint blob v4 stores instead of a live queue;
* :mod:`repro.sim.events.calendar` — :class:`CalendarEventQueue`, a
  bucketed calendar queue with the same public contract and exact
  ``(time_ns, seq)`` total order;
* :mod:`repro.sim.events.backend` — the :class:`EngineBackend`
  protocol plus the pure-numpy and optional numba implementations of
  the per-core span kernel;
* :mod:`repro.sim.events.span` — the batched arrival/departure drain
  that consumes a planned scheduler column without per-packet event
  pushes, falling back to scalar dispatch whenever a hook, fault
  event, guard trip or ordering ambiguity makes batching inexact.

Engine *selection* lives one level up in :mod:`repro.sim.engine`.
"""

from repro.sim.events.base import EventQueue, EventSnapshot
from repro.sim.events.calendar import CalendarEventQueue

__all__ = ["EventQueue", "EventSnapshot", "CalendarEventQueue"]
