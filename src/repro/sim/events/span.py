"""The batched span drain: arrival columns in, committed state out.

PR 5 vectorized the *scheduling* decision; the wall moved to the event
loop itself — one heap push/pop plus ~20 lines of Python bookkeeping
per packet.  This module removes that per-packet work for the common
case by draining a whole **span** of planned arrivals at once:

1. **Phase 1 — pure compute.**  Each core's span is an independent
   single-server FIFO recurrence (its in-flight packet, its queued
   backlog, its share of the planned arrivals).  The
   :func:`~repro.sim.events.backend.simulate_core` kernel runs it per
   core over replicated copies of the shared state (flow→last-core,
   migration flags) — interpreted for the numpy backend, ``njit``-ed
   for numba.  Nothing global is touched, so a bail costs nothing.
2. **Phase 2 — vectorized commit.**  The per-core results are merged
   back into the exact scalar-kernel state: event seqs are assigned in
   the precise global start order the scalar loop would have produced
   (see below), departures/latencies/metrics/queues/flow state are
   committed with numpy gathers, and the event queue's pending set is
   replaced wholesale via ``reset_entries``.

**Exactness, not approximation.**  The scalar closures remain the
bit-identity oracle; a span only commits when its semantics are
provably identical, and otherwise *bails* to scalar dispatch:

* any hook that fires per arrival (probes' ``sample``, queue
  busy/empty edges), a fault injector, killed packets, degraded core
  speeds or downed queues — bail;
* a flow resident on one core (busy/queued) while the plan maps it to
  another — the relative order of their flow-state writes would be
  cross-core — bail;
* a zero nominal service time (completions could tie their own
  starts) — bail;
* a planned ``-1`` sentinel — truncate the span before it;
* a ``batch_guard`` trip — truncate the span to the first tripping
  arrival and re-run phase 1 (rows before the trip are unaffected; the
  tripping arrival reruns scalar, exactly as the PR 5 guard contract
  prescribes).

**Exact event seqs.**  The scalar loop pushes one completion event per
started packet, seq-numbered in global start order, and a checkpoint
(or a same-timestamp pop) exposes those seqs — so the commit must
reproduce them bit for bit.  Start order is reconstructed from each
start's *trigger*: an idle-core start triggers at its arrival instant
(after all completions ≤ it — ``complete_until`` runs first), a
queue-pop start triggers at its predecessor's completion ``(fin,
seq)``.  A stable lexsort by (trigger time, trigger class, arrival
index) resolves everything except multiple queue-pop starts sharing
one trigger *time* across cores; those groups are fixed up in trigger
``seq`` order, which is well-founded because a trigger always starts
strictly earlier than the start it triggers (service times are
positive), so its own rank is already final.

**Reorder accounting.**  Departures and drops are replayed into the
:class:`~repro.sim.reorder.ReorderDetector` per flow.  Flows whose
accounted sequence numbers in merged depart/drop order are exactly
consecutive from the detector's expectation (the overwhelming case for
order-preserving schedulers) commit as one bulk counter update; any
other flow replays its events through the real ``on_depart``/
``on_drop`` methods — exact by construction.
"""

from __future__ import annotations

import time

import numpy as np

from repro.sim.events.backend import OUT_SLOTS

__all__ = ["SpanDriver"]

#: spans shorter than this go scalar — setup cost beats the savings
_MIN_SPAN = 64

#: after a bail, retry the span path once this many scalar arrivals
#: later (a bail cause is usually transient: a guard episode, a
#: sentinel, a conflicting leftover in a queue).  Kept small — the
#: kernel doubles it per consecutive bail up to its ceiling, so
#: persistent bail causes still settle at a cheap cadence while a
#: one-packet guard episode no longer costs hundreds of scalar
#: arrivals
RETRY_STRIDE = 64

_NO_GUARD = 1 << 60

#: adaptive span-cap bounds (see ``SpanDriver._cap``)
_CAP_INIT = 2048
_CAP_MIN = 512
_CAP_MAX = 1 << 20


class SpanDriver:
    """Per-kernel orchestrator for the batched span drain.

    Bound to one :class:`~repro.sim.kernel.SimKernel` and one
    :class:`~repro.sim.events.backend.EngineBackend`.  The kernel calls
    :meth:`attempt` from its arrival loop; the driver commits as many
    consecutive spans as stay eligible and returns the new local
    arrival index (unchanged on an immediate bail).
    """

    def __init__(self, kernel, backend) -> None:
        self.kernel = kernel
        self.backend = backend
        self._fn = backend.core_fn()
        self._lists = not backend.wants_arrays
        #: committed spans / bailed attempts / packets committed —
        #: profiling signals (``SimKernel.span_stats``)
        self.spans_committed = 0
        self.spans_bailed = 0
        self.packets_spanned = 0
        #: wall-clock phase split of committed spans (perf_counter_ns):
        #: phase-1 per-core simulation vs phase-2 state commit
        #: (including the scheduler's span commit).  Plan time lives on
        #: the kernel (``SimKernel.plan_ns``) — together the three make
        #: the bench report's plan/drain/commit breakdown.
        self.drain_ns = 0
        self.commit_ns = 0
        #: adaptive attempt-size cap (AIMD): a guard trip re-runs
        #: phase 1 truncated, so oversizing an attempt during an
        #: overload episode costs the whole surplus — shrink toward the
        #: observed trip distance on a trip, double back on a clean
        #: commit that filled the cap.  Purely a work bound; committed
        #: results are identical for any attempt size.
        self._cap = _CAP_INIT

    # ------------------------------------------------------------------
    def attempt(self, li: int, horizon_ns: int) -> int:
        """Drain consecutive spans starting at local index *li*; stop
        at the first bail or at *horizon_ns*.  Returns the new li."""
        while True:
            li2 = self._one_span(li, horizon_ns)
            if li2 == li:
                self.spans_bailed += 1
                return li
            li = li2

    # ------------------------------------------------------------------
    def _one_span(self, li: int, horizon_ns: int) -> int:
        k = self.kernel
        st = k.state
        cfg = k.config
        sched = k.scheduler

        if not getattr(sched, "batch_static", False):
            return li
        batch_commit = sched.batch_commit
        commit_span = getattr(sched, "batch_commit_span", None)
        if not getattr(sched, "commit_vectorized", False):
            # an unvectorized batch_commit_span buys nothing over the
            # driver's own replay loop below — ignore it so a scalar
            # loop can't masquerade as a batch-native commit
            commit_span = None
        if st.killed_pkts or k.injector is not None:
            return li
        bus = k.bus
        if (
            bus.dispatcher("sample") is not None
            or bus.dispatcher("queue_busy") is not None
            or bus.dispatcher("queue_empty") is not None
        ):
            return li
        n_cores = cfg.num_cores
        if st.core_speed.count(1.0) != n_cores:
            return li
        queues = st.queues
        core_busy = st.core_busy
        core_current = st.core_current_pkt
        for c in range(n_cores):
            if queues[c].down:
                return li
            if not core_busy[c] and len(queues[c]):
                return li  # broken invariant: queued work on an idle core

        # every pending event must be the completion of a busy core's
        # current packet (no timed events, exactly one per busy core)
        events = st.events
        busy_ev: dict[int, tuple[int, int]] = {}
        for t_ev, s_ev, payload in events.entries():
            if type(payload) is not tuple or len(payload) != 2:
                return li
            c_ev, p_ev = payload
            if c_ev < 0 or c_ev in busy_ev or core_current[c_ev] != p_ev:
                return li
            busy_ev[c_ev] = (t_ev, s_ev)
        for c in range(n_cores):
            if core_busy[c] != (c in busy_ev):
                return li

        # -- column coverage (same replan rule as the scalar loop) -----
        if sched.map_epoch != k._col_epoch or (
            li >= k._col_hi and li > k._col_plan_li
        ):
            k._plan_column(li)
        cl = k._col_lo
        if not (cl <= li < k._col_hi) or k._col_arr is None:
            return li
        win = k.window
        nominal = k._nominal
        if nominal is None:
            return li
        arrival = win.arrival_ns
        hi = li + int(
            np.searchsorted(arrival[li : k._col_hi], horizon_ns, side="right")
        )
        if hi - li < _MIN_SPAN:
            return li
        if hi - li > self._cap:
            hi = li + self._cap
        cores = np.asarray(k._col_arr[li - cl : hi - cl], dtype=np.int64)
        neg = np.nonzero(cores < 0)[0]
        if neg.size:
            hi = li + int(neg[0])
            if hi - li < _MIN_SPAN:
                return li
            cores = cores[: hi - li]
        span_n = hi - li

        base = win.base
        arr_span = arrival[li:hi]
        fid_span = win.flow_id[li:hi]
        proc_span = nominal[li:hi]
        if int(proc_span.min()) <= 0:
            return li

        # -- prelude: per-core in-flight + queued packets --------------
        pre_pkts: list[list[int]] = []
        for c in range(n_cores):
            rows = [core_current[c]] if core_busy[c] else []
            rows.extend(queues[c]._items)
            pre_pkts.append(rows)
        pre_all = [g for rows in pre_pkts for g in rows]
        n_win = len(win)
        if pre_all:
            pre_lrow = np.asarray(pre_all, dtype=np.int64) - base
            if int(pre_lrow.min()) < 0 or int(pre_lrow.max()) >= n_win:
                return li  # prelude packet outside the live window
            if int(nominal[pre_lrow].min()) <= 0:
                return li
            pre_fid = win.flow_id[pre_lrow]
            pre_core = np.repeat(
                np.arange(n_cores, dtype=np.int64),
                [len(rows) for rows in pre_pkts],
            )
        else:
            pre_lrow = np.empty(0, dtype=np.int64)
            pre_fid = np.empty(0, dtype=np.int64)
            pre_core = np.empty(0, dtype=np.int64)

        # -- dense flow table + cross-core conflict detection ----------
        all_fid = np.concatenate([pre_fid, np.asarray(fid_span, dtype=np.int64)])
        all_core = np.concatenate([pre_core, np.asarray(cores, dtype=np.int64)])
        uniq, inv = np.unique(all_fid, return_inverse=True)
        fcore = np.empty(uniq.size, dtype=np.int64)
        fcore[inv] = all_core  # last write wins
        if not np.array_equal(fcore[inv], all_core):
            return li  # a flow spans two cores: write order matters
        n_pre_all = pre_fid.size
        inv_pre = inv[:n_pre_all]
        inv_span = inv[n_pre_all:]
        flow_last_core = st.flow_last_core
        uniq_list = uniq.tolist()
        init_last = [flow_last_core[f] for f in uniq_list]

        guard = sched.batch_guard
        guard_val = guard if guard is not None else _NO_GUARD
        cap = cfg.queue_capacity
        fm_pen = cfg.fm_penalty_ns
        cc_pen = cfg.cc_penalty_ns
        sid_win = win.service_id

        # span rows grouped by core, arrival order preserved
        order = np.argsort(cores, kind="stable")
        bounds = np.searchsorted(cores[order], np.arange(n_cores + 1))
        pre_off = np.zeros(n_cores + 1, dtype=np.int64)
        np.cumsum([len(rows) for rows in pre_pkts], out=pre_off[1:])

        fn = self._fn
        lists = self._lists
        last_service = st.core_last_service

        def run_phase1(S: int):
            """Phase 1 over span prefix [0, S): pure, committable."""
            t_h = int(arr_span[S - 1])
            if lists:
                flow_last = list(init_last)
                migrated = [0] * len(init_last)
            else:
                flow_last = np.asarray(init_last, dtype=np.int64)
                migrated = np.zeros(len(init_last), dtype=np.int64)
            per_core = []
            for c in range(n_cores):
                rows_all = order[bounds[c] : bounds[c + 1]]
                cut = int(np.searchsorted(rows_all, S))
                rows_c = rows_all[:cut]
                n_pre_c = len(pre_pkts[c])
                hb = 1 if core_busy[c] else 0
                n_rows = n_pre_c + rows_c.size
                if n_rows == 0:
                    per_core.append(None)
                    continue
                p_lo, p_hi = int(pre_off[c]), int(pre_off[c + 1])
                lrow = np.concatenate([pre_lrow[p_lo:p_hi], li + rows_c])
                arr_t = np.concatenate(
                    [np.zeros(n_pre_c, dtype=np.int64), arr_span[rows_c]]
                )
                proc = nominal[lrow]
                sid = sid_win[lrow].astype(np.int64)
                floc = np.concatenate([inv_pre[p_lo:p_hi], inv_span[rows_c]])
                busy_fin = busy_ev[c][0] if hb else 0
                nb = n_rows + 1
                if lists:
                    a_arr, a_proc = arr_t.tolist(), proc.tolist()
                    a_sid, a_floc = sid.tolist(), floc.tolist()
                    order_buf = [0] * nb
                    fin_buf = [0] * nb
                    kind_buf = [0] * nb
                    drop_buf = [0] * nb
                    queue_buf = [0] * nb
                    occ_buf = [0] * (rows_c.size + 1)
                    out = [0] * OUT_SLOTS
                else:
                    a_arr = np.ascontiguousarray(arr_t, dtype=np.int64)
                    a_proc = np.ascontiguousarray(proc, dtype=np.int64)
                    a_sid = np.ascontiguousarray(sid, dtype=np.int64)
                    a_floc = np.ascontiguousarray(floc, dtype=np.int64)
                    order_buf = np.zeros(nb, dtype=np.int64)
                    fin_buf = np.zeros(nb, dtype=np.int64)
                    kind_buf = np.zeros(nb, dtype=np.int64)
                    drop_buf = np.zeros(nb, dtype=np.int64)
                    queue_buf = np.zeros(nb, dtype=np.int64)
                    occ_buf = np.zeros(rows_c.size + 1, dtype=np.int64)
                    out = np.zeros(OUT_SLOTS, dtype=np.int64)
                fn(
                    c, n_rows, n_pre_c, hb, busy_fin,
                    a_arr, a_proc, a_sid, a_floc,
                    flow_last, migrated,
                    last_service[c], guard_val, cap, fm_pen, cc_pen, t_h,
                    order_buf, fin_buf, kind_buf, drop_buf, queue_buf,
                    occ_buf, out,
                )
                per_core.append(
                    (rows_c, lrow, order_buf, fin_buf, kind_buf,
                     drop_buf, queue_buf, occ_buf, [int(v) for v in out])
                )
            return t_h, flow_last, migrated, per_core

        S = span_n
        t_drain0 = time.perf_counter_ns()
        t_h, flow_last, migrated, per_core = run_phase1(S)
        self.drain_ns += time.perf_counter_ns() - t_drain0

        # guard trip: truncate to the first tripping arrival and re-run
        trip_rows = []
        for c in range(n_cores):
            r = per_core[c]
            if r is not None and r[8][11] >= 0:
                n_pre_c = len(pre_pkts[c])
                trip_rows.append(int(r[0][r[8][11] - n_pre_c]))
        if trip_rows:
            S = min(trip_rows)
            # shrink the next attempt toward the observed trip
            # distance: re-running past it is pure waste
            self._cap = max(_CAP_MIN, 1 << max(S, 1).bit_length())
            if S < _MIN_SPAN:
                return li
            t_drain0 = time.perf_counter_ns()
            t_h, flow_last, migrated, per_core = run_phase1(S)
            self.drain_ns += time.perf_counter_ns() - t_drain0
            for r in per_core:
                if r is not None and r[8][11] >= 0:  # pragma: no cover
                    return li  # defensive: a re-run must not trip

        # ==============================================================
        # Phase 2: commit.  From here on nothing can bail.
        # ==============================================================
        t_commit0 = time.perf_counter_ns()
        base_seq = events._seq

        # -- per-core served entries → global started/departed arrays --
        g_T, g_kind, g_tie, g_prev, g_prevseq = [], [], [], [], []
        g_fin, g_core, g_lrow = [], [], []
        d_fin, d_seq_parts, d_lrow = [], [], []
        dep_entry_started = []  # per departed entry: global started idx or -1
        ends = []  # per core: (started entries slice, e_* views) for later
        n_started = 0
        n_busy_dep = 0
        for c in range(n_cores):
            r = per_core[c]
            if r is None:
                ends.append(None)
                continue
            rows_c, lrow, order_buf, fin_buf, kind_buf = r[0], r[1], r[2], r[3], r[4]
            out = r[8]
            served, n_dep = out[0], out[1]
            e_row = np.asarray(order_buf[:served], dtype=np.int64)
            e_fin = np.asarray(fin_buf[:served], dtype=np.int64)
            e_kind = np.asarray(kind_buf[:served], dtype=np.int64)
            hb = 1 if core_busy[c] else 0
            n_pre_c = len(pre_pkts[c])
            # started entries: all served except the pre-span busy head
            s0 = hb  # first started entry index within e_*
            ns_c = served - s0
            if ns_c:
                sk = e_kind[s0:]
                arr_mask = sk == 1
                pop_mask = ~arr_mask
                # trigger time: arrival instant for idle-core starts,
                # predecessor completion time for queue pops
                tT = np.empty(ns_c, dtype=np.int64)
                srow_started = np.zeros(ns_c, dtype=np.int64)
                if arr_mask.any():
                    sr = rows_c[(e_row[s0:][arr_mask] - n_pre_c)]
                    srow_started[arr_mask] = sr
                    tT[arr_mask] = arr_span[sr]
                if pop_mask.any():
                    jj = np.nonzero(pop_mask)[0] + s0
                    tT[pop_mask] = e_fin[jj - 1]
                g_T.append(tT)
                # sort class: pops (kind 0) before arrival starts
                # (kind 1) at equal instants — complete_until first
                g_kind.append(sk)
                g_tie.append(srow_started)
                # predecessor started index (global) or -1 when the
                # trigger is the pre-span busy completion
                prev = np.arange(s0, served, dtype=np.int64) - 1
                prev_started = np.where(
                    prev >= s0, n_started + prev - s0, -1
                )
                prev_is_pop = pop_mask
                g_prev.append(np.where(prev_is_pop, prev_started, -1))
                g_prevseq.append(
                    np.full(ns_c, busy_ev[c][1] if hb else -1, dtype=np.int64)
                )
                g_fin.append(e_fin[s0:])
                g_core.append(np.full(ns_c, c, dtype=np.int64))
                g_lrow.append(lrow[e_row[s0:]])
            ends.append((r, e_row, e_fin, e_kind, s0, ns_c, n_started))
            # departures: first n_dep served entries (chain order)
            if n_dep:
                d_fin.append(e_fin[:n_dep])
                d_lrow.append(lrow[e_row[:n_dep]])
                started_idx = np.arange(n_dep, dtype=np.int64) - s0 + n_started
                if hb:
                    started_idx[0] = -1  # busy head keeps its original seq
                    n_busy_dep += 1
                dep_entry_started.append(started_idx)
                d_seq_parts.append(
                    np.full(n_dep, busy_ev[c][1] if hb else 0, dtype=np.int64)
                )
            n_started += ns_c

        if n_started:
            g_T = np.concatenate(g_T)
            g_kind = np.concatenate(g_kind)
            g_tie = np.concatenate(g_tie)
            g_prev = np.concatenate(g_prev)
            g_prevseq = np.concatenate(g_prevseq)
            g_fin = np.concatenate(g_fin)
            g_core = np.concatenate(g_core)
            g_lrow = np.concatenate(g_lrow)
        else:
            g_T = g_kind = g_tie = g_prev = g_prevseq = np.empty(0, np.int64)
            g_fin = g_core = g_lrow = np.empty(0, np.int64)

        # -- exact global start ranks ----------------------------------
        # class 0 = queue-pop starts (complete_until runs before the
        # arrival dispatch at equal instants), class 1 = arrival starts
        # ordered by arrival index; g_kind was built as (1 - kind).
        ord0 = np.lexsort((g_tie, g_kind, g_T))
        rank = np.empty(n_started, dtype=np.int64)
        rank[ord0] = np.arange(n_started, dtype=np.int64)
        if n_started > 1:
            sT = g_T[ord0]
            sk0 = g_kind[ord0] == 0
            linked = np.zeros(n_started, dtype=bool)
            linked[1:] = (sT[1:] == sT[:-1]) & sk0[1:] & sk0[:-1]
            if linked.any():
                # fix up each multi-pop tie group in trigger-seq order;
                # left to right, so trigger ranks are already final
                pos = np.nonzero(linked)[0]
                runs: list[tuple[int, int]] = []
                start = int(pos[0]) - 1
                prev_p = int(pos[0])
                for p in pos[1:].tolist():
                    if p != prev_p + 1:
                        runs.append((start, prev_p))
                        start = p - 1
                    prev_p = p
                runs.append((start, prev_p))
                for lo, hi_r in runs:
                    members = ord0[lo : hi_r + 1].tolist()
                    tseqs = [
                        int(g_prevseq[m])
                        if g_prev[m] < 0
                        else base_seq + int(rank[g_prev[m]])
                        for m in members
                    ]
                    fixed = [m for _, m in sorted(zip(tseqs, members))]
                    for off, m in enumerate(fixed):
                        rank[m] = lo + off
                    ord0[lo : hi_r + 1] = fixed

        # -- departures in exact pop order -----------------------------
        n_dep_total = 0
        if d_fin:
            dep_fin = np.concatenate(d_fin)
            dep_lrow = np.concatenate(d_lrow)
            dep_started = np.concatenate(dep_entry_started)
            dep_seq = np.concatenate(d_seq_parts)
            m = dep_started >= 0
            dep_seq[m] = base_seq + rank[dep_started[m]]
            ord_dep = np.lexsort((dep_seq, dep_fin))
            dep_fin = dep_fin[ord_dep]
            dep_lrow = dep_lrow[ord_dep]
            dep_seq = dep_seq[ord_dep]
            n_dep_total = int(dep_fin.size)
            dep_flow = win.flow_id[dep_lrow]
            dep_pseq = win.seq[dep_lrow]
            dep_arr = win.arrival_ns[dep_lrow]
        else:
            dep_fin = dep_lrow = dep_seq = np.empty(0, np.int64)
            dep_flow = dep_pseq = dep_arr = np.empty(0, np.int64)

        # -- drops in arrival order ------------------------------------
        drop_srows = []
        for c in range(n_cores):
            r = per_core[c]
            if r is None:
                continue
            nd = r[8][9]
            if nd:
                n_pre_c = len(pre_pkts[c])
                rows_c = r[0]
                tb = np.asarray(r[5][:nd], dtype=np.int64)
                drop_srows.append(rows_c[tb - n_pre_c])
                queues[c].drops += nd
        if drop_srows:
            drop_srow = np.sort(np.concatenate(drop_srows))
            drop_t = arr_span[drop_srow]
            drop_lrow = li + drop_srow
            drop_flow = win.flow_id[drop_lrow]
            drop_pseq = win.seq[drop_lrow]
        else:
            drop_srow = drop_t = np.empty(0, np.int64)
            drop_flow = drop_pseq = np.empty(0, np.int64)
        n_drop_total = int(drop_srow.size)

        # -- metrics counters ------------------------------------------
        metrics = st.metrics
        metrics.generated += S
        gen_counts = np.bincount(
            win.service_id[li : li + S], minlength=metrics.num_services
        )
        gps = metrics.generated_per_service
        for s_id in np.nonzero(gen_counts)[0].tolist():
            gps[s_id] += int(gen_counts[s_id])
        if n_drop_total:
            metrics.dropped += n_drop_total
            dcnt = np.bincount(
                win.service_id[drop_lrow], minlength=metrics.num_services
            )
            dps = metrics.dropped_per_service
            for s_id in np.nonzero(dcnt)[0].tolist():
                dps[s_id] += int(dcnt[s_id])
        busy_ns = metrics.busy_ns_per_core
        for c in range(n_cores):
            r = per_core[c]
            if r is None:
                continue
            out = r[8]
            busy_ns[c] += out[8]
            metrics.flow_migration_events += out[6]
            metrics.cold_cache_events += out[7]
        if n_dep_total:
            metrics.departed += n_dep_total
            metrics.last_depart_ns = int(dep_fin[-1])
        if cfg.collect_latencies:
            metrics.latencies_ns.extend((dep_fin - dep_arr).tolist())
        if cfg.record_departures:
            st.departures.extend(
                zip(dep_flow.tolist(), dep_pseq.tolist(), dep_fin.tolist())
            )
            st.drop_records.extend(
                zip(drop_flow.tolist(), drop_pseq.tolist(), drop_t.tolist())
            )

        # -- reorder accounting ----------------------------------------
        self._commit_reorder(
            st.reorder, dep_fin, dep_seq, dep_flow, dep_pseq,
            drop_t, drop_srow, drop_flow, drop_pseq,
        )

        # -- flow state ------------------------------------------------
        mig = np.asarray(migrated, dtype=bool)
        if mig.any():
            st.flow_migrated[uniq[mig]] = True
        final_last = (
            flow_last if lists else flow_last.tolist()
        )
        for f, c in zip(uniq_list, final_last):
            flow_last_core[f] = c

        # -- core / queue / event state --------------------------------
        new_entries = []
        for c in range(n_cores):
            info = ends[c]
            if info is None:
                # untouched core: its pre-existing event (if any) stays
                if c in busy_ev:
                    t_ev, s_ev = busy_ev[c]
                    new_entries.append((t_ev, s_ev, (c, core_current[c])))
                continue
            r, e_row, e_fin, e_kind, s0, ns_c, started_off = info
            rows_c, lrow = r[0], r[1]
            out = r[8]
            served, cur = out[0], out[2]
            head, tail = out[4], out[5]
            q = queues[c]
            items = q._items
            items.clear()
            if tail > head:
                qrows = np.asarray(r[6][head:tail], dtype=np.int64)
                items.extend((base + lrow[qrows]).tolist())
            if out[10] > q.peak:
                q.peak = out[10]
            last_service[c] = out[12]
            if cur >= 0:
                pkt = int(base + lrow[cur])
                core_busy[c] = True
                core_current[c] = pkt
                # seq of the in-flight packet's completion event: the
                # last served entry is always the current one
                j = served - 1
                if j < s0:  # the pre-span busy packet never completed
                    ev_seq = busy_ev[c][1]
                else:
                    ev_seq = base_seq + int(rank[started_off + (j - s0)])
                new_entries.append((int(e_fin[j]), ev_seq, (c, pkt)))
            else:
                core_busy[c] = False
                core_current[c] = -1
        last_pop = int(dep_fin[-1]) if n_dep_total else events._last_pop_ns
        events.reset_entries(
            new_entries,
            seq=base_seq + n_started,
            last_pop_ns=last_pop,
            popped_delta=n_dep_total,
        )

        # -- scheduler per-packet bookkeeping --------------------------
        if batch_commit is not None:
            if guard is not None:
                occs = np.empty(S, dtype=np.int64)
                for c in range(n_cores):
                    r = per_core[c]
                    if r is None:
                        continue
                    rows_c = r[0]
                    if rows_c.size:
                        occs[rows_c] = np.asarray(
                            r[7][: rows_c.size], dtype=np.int64
                        )
            else:
                occs = np.full(S, -1, dtype=np.int64)
            if commit_span is not None:
                commit_span(
                    win.flow_id[li : li + S],
                    win.flow_hash[li : li + S],
                    cores[:S],
                    occs,
                    arr_span[:S],
                )
            else:
                # generic fallback: replay the per-packet hook in
                # arrival order (exactly what a scalar
                # ``batch_commit_span`` would do)
                for f, h, cc, o, t in zip(
                    win.flow_id[li : li + S].tolist(),
                    win.flow_hash[li : li + S].tolist(),
                    cores[:S].tolist(),
                    occs.tolist(),
                    arr_span[:S].tolist(),
                ):
                    batch_commit(f, h, cc, o, t)

        self.commit_ns += time.perf_counter_ns() - t_commit0
        self.spans_committed += 1
        self.packets_spanned += S
        if not trip_rows and S == self._cap and self._cap < _CAP_MAX:
            self._cap *= 2  # clean full-cap commit: probe larger spans
        return li + S

    # ------------------------------------------------------------------
    @staticmethod
    def _commit_reorder(
        det, dep_fin, dep_seq, dep_flow, dep_pseq,
        drop_t, drop_srow, drop_flow, drop_pseq,
    ) -> None:
        """Apply the span's departures and drops to the detector.

        The merged accounting order is (time, departs-before-drops,
        event seq / arrival index): ``complete_until(t)`` pops every
        fin ≤ t before the arrival at t runs its drop.  The detector is
        per-flow state, so flows are committed independently: bulk for
        exactly-consecutive flows, method replay otherwise.
        """
        n_dep = int(dep_fin.size)
        n_drop = int(drop_t.size)
        if n_dep + n_drop == 0:
            return
        m_t = np.concatenate([dep_fin, drop_t])
        m_ph = np.concatenate(
            [np.zeros(n_dep, np.int64), np.ones(n_drop, np.int64)]
        )
        m_key = np.concatenate([dep_seq, drop_srow])
        m_flow = np.concatenate([dep_flow, drop_flow]).astype(np.int64)
        m_pseq = np.concatenate([dep_pseq, drop_pseq]).astype(np.int64)
        ord_m = np.lexsort((m_key, m_ph, m_t))
        fl = m_flow[ord_m]
        ph = m_ph[ord_m]
        ps = m_pseq[ord_m]
        ord_f = np.argsort(fl, kind="stable")  # per-flow, merged order kept
        fl = fl[ord_f]
        ph = ph[ord_f]
        ps = ps[ord_f]
        n = fl.size
        grp_start = np.empty(n, dtype=bool)
        grp_start[0] = True
        grp_start[1:] = fl[1:] != fl[:-1]
        starts = np.nonzero(grp_start)[0]
        ends = np.append(starts[1:], n)
        # a flow is bulk-committable iff its accounted seqs are strictly
        # consecutive within the span ...
        bad = np.zeros(n, dtype=bool)
        bad[1:] = (~grp_start[1:]) & (ps[1:] != ps[:-1] + 1)
        grp_bad = np.add.reduceat(bad, starts) > 0
        dep_counts = np.add.reduceat(ph == 0, starts)
        expected_map = det._next_expected
        pending = det._pending
        fl_list = fl.tolist()
        ps_list = ps.tolist()
        ph_list = ph.tolist()
        on_depart = det.on_depart
        on_drop = det.on_drop
        for gi in range(starts.size):
            lo = int(starts[gi])
            hi = int(ends[gi])
            f = fl_list[lo]
            # ... and start at the expectation with nothing pending
            if (
                not grp_bad[gi]
                and f not in pending
                and expected_map.get(f, 0) == ps_list[lo]
            ):
                cnt = hi - lo
                expected_map[f] = ps_list[lo] + cnt
                det.accounted += cnt
                det.departed += int(dep_counts[gi])
            else:
                for i in range(lo, hi):
                    if ph_list[i] == 0:
                        on_depart(f, ps_list[i])
                    else:
                        on_drop(f, ps_list[i])
