"""Span-drain compute backends: the ``EngineBackend`` protocol.

The batched drain in :mod:`repro.sim.events.span` splits each span into
a **pure compute** phase (per-core FIFO recurrences — where the packet
rate is spent) and a **commit** phase (vectorized numpy bookkeeping).
This module owns the compute phase behind a tiny protocol so the same
span orchestration can run it interpreted or compiled:

* :class:`NumpyBackend` — the default: runs :func:`simulate_core` as
  plain Python over unboxed list columns.  Always available.
* :class:`NumbaBackend` — ``numba.njit``-compiles the *same* function
  over int64 arrays.  Constructed lazily and only when numba imports;
  :func:`numba_available` reports why not otherwise.  Install with
  ``pip install repro[accel]``.

:func:`simulate_core` is deliberately written in the array-index subset
both execution modes accept (no dicts, no appends, no numpy API calls,
preallocated outputs, a ring buffer for the FIFO): one source of truth
means the backends cannot drift apart — ``tests/sim/test_engine_parity.py``
additionally pins list-mode against array-mode on random inputs.

State-Compute Replication (Xu et al., PAPERS.md) is the shape: the
packet-rate recurrence runs here over replicated scalar state copies,
while per-flow/global state is reconciled once per span by the commit
phase.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

__all__ = [
    "EngineBackend",
    "NumpyBackend",
    "NumbaBackend",
    "numba_available",
    "simulate_core",
]


def simulate_core(
    core_id,
    n_rows,      # total rows: [busy?] + queued prelude + span arrivals
    n_pre,       # prelude rows (busy + queued); arrivals start here
    has_busy,    # 1 when row 0 is the in-flight packet, else 0
    busy_fin,    # its completion time (undefined when idle)
    arr_t,       # [n_rows] arrival times (admission driver for span rows)
    proc,        # [n_rows] nominal service ns (eq. 3 without penalties)
    sid,         # [n_rows] service ids
    floc,        # [n_rows] dense flow index
    flow_last,   # [n_flows] dense last-core overlay (mutated)
    migrated,    # [n_flows] migration flags 0/1 (mutated)
    last_sid,    # core_last_service at span start
    guard,       # occupancy guard (a huge value when unguarded)
    cap,         # queue capacity
    fm_pen,
    cc_pen,
    t_h,         # drain horizon: the span's last global arrival time
    # preallocated outputs, all [n_rows(+1)]:
    order_buf,   # rows in service order (busy prelude first)
    fin_buf,     # completion time per served row, aligned with order_buf
    kind_buf,    # 1 = started on an idle-core arrival, 0 = queue pop
    drop_buf,    # dropped row ids, first n_drops valid
    queue_buf,   # FIFO ring storage
    occ_buf,     # [span rows] pre-offer occupancy per admitted arrival
    out,         # [OUT_SLOTS] scalar outputs (see unpacking in span.py)
):
    """One core's span recurrence: admit / drop / start / complete.

    Bit-for-bit the scalar kernel's per-core behaviour: completions at
    or before an arrival instant drain first, the guard is read on the
    pre-offer occupancy, a full queue drops, an idle core starts the
    arrival immediately, and after the last arrival completions keep
    chaining up to *t_h* (the global arrival loop would have drained
    them inside the span).  Flow-migration and cold-cache penalties
    mutate the replicated ``flow_last``/``last_sid`` copies exactly as
    ``start_packet`` would.

    Pure with respect to simulator state: everything it writes is a
    caller-owned buffer or copy, so a bail discards the attempt at zero
    cost.  Returns nothing; scalars land in ``out``.
    """
    head = 0
    tail = 0
    q_start = has_busy
    for r in range(q_start, n_pre):
        queue_buf[tail] = r
        tail += 1
    served = 0
    if has_busy:
        order_buf[0] = 0
        fin_buf[0] = busy_fin
        kind_buf[0] = 0
        served = 1
    cur = 0 if has_busy else -1
    cur_fin = busy_fin if has_busy else 0
    fm = 0
    cc = 0
    busy_add = 0
    n_drops = 0
    max_occ = 0
    trip = -1
    r = n_pre
    while r < n_rows:
        t = arr_t[r]
        while cur >= 0 and cur_fin <= t:
            # completion: pop the FIFO or go idle
            if head < tail:
                nxt = queue_buf[head]
                head += 1
                p = proc[nxt]
                f = floc[nxt]
                last = flow_last[f]
                if last >= 0 and last != core_id:
                    p += fm_pen
                    fm += 1
                    migrated[f] = 1
                flow_last[f] = core_id
                s = sid[nxt]
                if last_sid != s:
                    if last_sid >= 0:
                        p += cc_pen
                        cc += 1
                    last_sid = s
                busy_add += p
                order_buf[served] = nxt
                fin_buf[served] = cur_fin + p
                kind_buf[served] = 0
                served += 1
                cur = nxt
                cur_fin = cur_fin + p
            else:
                cur = -1
        occ = tail - head
        if occ >= guard:
            trip = r
            break
        # the occupancy the scalar guard/commit would have read for
        # this arrival (pre-offer, post-drain)
        occ_buf[r - n_pre] = occ
        if cur >= 0:
            if occ >= cap:
                drop_buf[n_drops] = r
                n_drops += 1
            else:
                queue_buf[tail] = r
                tail += 1
                if occ + 1 > max_occ:
                    max_occ = occ + 1
        else:
            p = proc[r]
            f = floc[r]
            last = flow_last[f]
            if last >= 0 and last != core_id:
                p += fm_pen
                fm += 1
                migrated[f] = 1
            flow_last[f] = core_id
            s = sid[r]
            if last_sid != s:
                if last_sid >= 0:
                    p += cc_pen
                    cc += 1
                last_sid = s
            busy_add += p
            order_buf[served] = r
            fin_buf[served] = t + p
            kind_buf[served] = 1
            served += 1
            cur = r
            cur_fin = t + p
        r += 1
    # post-arrival drain: the global loop's complete_until calls keep
    # popping this core's chain while later arrivals land elsewhere
    while cur >= 0 and cur_fin <= t_h:
        if head < tail:
            nxt = queue_buf[head]
            head += 1
            p = proc[nxt]
            f = floc[nxt]
            last = flow_last[f]
            if last >= 0 and last != core_id:
                p += fm_pen
                fm += 1
                migrated[f] = 1
            flow_last[f] = core_id
            s = sid[nxt]
            if last_sid != s:
                if last_sid >= 0:
                    p += cc_pen
                    cc += 1
                last_sid = s
            busy_add += p
            order_buf[served] = nxt
            fin_buf[served] = cur_fin + p
            kind_buf[served] = 0
            served += 1
            cur = nxt
            cur_fin = cur_fin + p
        else:
            cur = -1
    # departed = the service-order prefix with fin <= t_h (fins are
    # strictly increasing along the chain)
    n_dep = 0
    while n_dep < served and fin_buf[n_dep] <= t_h:
        n_dep += 1
    out[0] = served
    out[1] = n_dep
    out[2] = cur
    out[3] = cur_fin if cur >= 0 else -1
    out[4] = head
    out[5] = tail
    out[6] = fm
    out[7] = cc
    out[8] = busy_add
    out[9] = n_drops
    out[10] = max_occ
    out[11] = trip
    out[12] = last_sid


#: scalar-output slot count for the ``out`` buffer above
OUT_SLOTS = 13


class EngineBackend(Protocol):
    """Compute backend for the span drain's per-core recurrence."""

    #: registry/display name ("numpy", "numba")
    name: str

    #: True when the per-core function expects numpy arrays; False when
    #: it expects unboxed Python lists (cheaper in the interpreter)
    wants_arrays: bool

    def core_fn(self) -> Callable[..., Any]:
        """The compiled/interpreted :func:`simulate_core` to call."""
        ...


class NumpyBackend:
    """Interpreted backend: :func:`simulate_core` over plain lists."""

    name = "numpy"
    wants_arrays = False

    def core_fn(self) -> Callable[..., Any]:
        return simulate_core


_NUMBA_REASON: str | None = None
_NUMBA_FN: Callable[..., Any] | None = None


def numba_available() -> tuple[bool, str | None]:
    """(available, reason-if-not) for the optional numba backend."""
    global _NUMBA_REASON
    if _NUMBA_REASON is not None:
        return _NUMBA_REASON == "", _NUMBA_REASON or None
    try:
        import numba  # noqa: F401
    except ImportError:
        _NUMBA_REASON = (
            "numba is not installed (pip install repro[accel])"
        )
        return False, _NUMBA_REASON
    _NUMBA_REASON = ""
    return True, None


class NumbaBackend:
    """Compiled backend: ``numba.njit`` over the same kernel source.

    Compilation is lazy (first span pays the JIT) and cached for the
    process.  Constructing the backend when numba is missing raises —
    :func:`repro.sim.engine.resolve_engine` checks availability first
    and falls back to :class:`NumpyBackend` with a recorded reason.
    """

    name = "numba"
    wants_arrays = True

    def __init__(self) -> None:
        ok, reason = numba_available()
        if not ok:
            raise ImportError(reason)

    def core_fn(self) -> Callable[..., Any]:
        global _NUMBA_FN
        if _NUMBA_FN is None:
            import numba

            _NUMBA_FN = numba.njit(cache=False, nogil=True)(simulate_core)
        return _NUMBA_FN
