"""Chunked packet sources: the streaming workload pipeline.

A :class:`PacketSource` yields the simulator's six packet columns as
consecutive fixed-size :class:`WorkloadChunk` blocks instead of one
whole-run :class:`~repro.sim.workload.Workload`, so run length is
bounded by the Holt-Winters horizon rather than by RAM:

* :class:`MaterializedSource` wraps an already-built workload (full
  backward compatibility; with a ``chunk_size`` it exercises the
  chunked kernel path over in-memory arrays);
* :class:`StreamingSource` fuses per-service
  :class:`~repro.sim.generator.ArrivalStream` generation with
  :class:`~repro.trace.trace.HeaderCursor` header replay into an
  incremental k-way time merge that is **bit-identical** to
  :func:`~repro.sim.workload.build_workload` at O(chunk) memory.

Bit-identity rests on three invariants (each pinned by tests):

1. *RNG draw order* — per service, all segment rates then all Poisson
   counts are drawn up front exactly as ``arrival_times`` draws them;
   only the per-arrival uniforms stream, and numpy ``Generator`` draws
   are bit-identical whether taken whole or chunked.
2. *Safe merge horizon* — a service's unrealised arrivals are all
   ``>= pending_floor_ns()`` (its next segment start), so every
   buffered arrival strictly below ``min`` over services of that floor
   can be released: nothing earlier can appear later.  Released batches
   concatenate per-service prefixes in service order and stable-sort by
   time — exactly the global ``argsort(kind="stable")`` tie-break of
   ``build_workload``.
3. *Incremental sequence numbers* — per-flow counters assign each
   released batch the same 0-based sequences the global
   ``_per_flow_sequences`` pass would.

Sources are cursors: ``next_chunk()`` consumes.  ``clone()`` returns a
fresh, unconsumed source of the same spec (cheap — the kernel clones
its source on construction so one source object can seed many runs);
``snapshot()``/``restore()`` capture the mid-stream cursor for
checkpoint/resume.  ``fingerprint()`` is a streaming blake2b digest
over the chunk bytes, independent of chunk boundaries, so materialized
and streamed builds of the same spec share one fingerprint.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.hashing.crc import CRC16_CCITT, CRCSpec
from repro.sim.generator import ArrivalStream, HoltWintersParams, build_rate_model
from repro.sim.workload import Workload, service_flow_hashes
from repro.trace.trace import Trace
from repro.util.rng import spawn_rngs

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "WorkloadChunk",
    "PacketSource",
    "MaterializedSource",
    "StreamingSource",
    "workload_fingerprint",
]

#: default packets per chunk (~3 MB of column data)
DEFAULT_CHUNK_SIZE = 65_536

#: sentinel horizon meaning "release everything buffered"
_NO_HORIZON = 1 << 62


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadChunk:
    """One consecutive block of the global packet sequence.

    ``base`` is the global index of the first packet; the six column
    arrays match :class:`~repro.sim.workload.Workload` dtypes and cover
    packets ``base .. base + len - 1`` in arrival order.
    """

    base: int
    arrival_ns: np.ndarray
    service_id: np.ndarray
    flow_id: np.ndarray
    size_bytes: np.ndarray
    flow_hash: np.ndarray
    seq: np.ndarray

    def __len__(self) -> int:
        return int(self.arrival_ns.shape[0])

    @property
    def end(self) -> int:
        """Global index one past the last packet in this chunk."""
        return self.base + len(self)


_COLS = ("arrival_ns", "service_id", "flow_id", "size_bytes", "flow_hash", "seq")
_COL_DTYPES = (np.int64, np.int32, np.int64, np.int32, np.int64, np.int64)


def concat_chunks(chunks: list[WorkloadChunk]) -> WorkloadChunk:
    """Merge consecutive chunks into one (the kernel's arrival window)."""
    if not chunks:
        return empty_chunk(0)
    if len(chunks) == 1:
        return chunks[0]
    for prev, nxt in zip(chunks, chunks[1:]):
        if nxt.base != prev.end:
            raise ConfigError(
                f"chunks are not consecutive: {prev.end} then {nxt.base}"
            )
    return WorkloadChunk(
        chunks[0].base,
        *(np.concatenate([getattr(c, col) for c in chunks]) for col in _COLS),
    )


def empty_chunk(base: int) -> WorkloadChunk:
    return WorkloadChunk(
        base, *(np.empty(0, dtype=dt) for dt in _COL_DTYPES)
    )


# ----------------------------------------------------------------------
# content fingerprint (streaming blake2b, chunk-boundary independent)
# ----------------------------------------------------------------------
class _Fingerprint:
    """Streaming digest over the six packet columns.

    One blake2b per column, fed chunk by chunk — ``update`` granularity
    does not change a hash, so any chunking of the same packet sequence
    (including the degenerate whole-workload "chunk") yields the same
    digest; the final value also binds the structural header.
    """

    def __init__(self) -> None:
        self._hashes = {c: hashlib.blake2b(digest_size=16) for c in _COLS}

    def add(self, chunk) -> None:
        """Feed one chunk (or a whole workload — same attributes)."""
        for col, dtype in zip(_COLS, _COL_DTYPES):
            arr = np.ascontiguousarray(getattr(chunk, col), dtype=dtype)
            self._hashes[col].update(arr)

    def finish(
        self, n: int, duration_ns: int, num_flows: int, num_services: int
    ) -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(
            f"wl-v2;n={n};dur={duration_ns};flows={num_flows};"
            f"svcs={num_services}".encode()
        )
        for col in _COLS:
            h.update(self._hashes[col].digest())
        return h.hexdigest()


def workload_fingerprint(workload) -> str:
    """Content fingerprint of a :class:`Workload` or a
    :class:`PacketSource` — equal whenever the packet sequences are
    equal, regardless of how they are built or chunked."""
    if isinstance(workload, PacketSource):
        return workload.fingerprint()
    acc = _Fingerprint()
    acc.add(workload)
    return acc.finish(
        workload.num_packets, workload.duration_ns,
        workload.num_flows, workload.num_services,
    )


# ----------------------------------------------------------------------
class _BatchQueue:
    """Released-but-not-yet-emitted column batches, split on demand."""

    __slots__ = ("_batches", "count")

    def __init__(self) -> None:
        self._batches: list[tuple[np.ndarray, ...]] = []
        self.count = 0

    def push(self, cols: tuple[np.ndarray, ...]) -> None:
        n = cols[0].shape[0]
        if n:
            self._batches.append(cols)
            self.count += n

    def take(self, n: int) -> tuple[np.ndarray, ...]:
        """Pop the first *n* packets as one column set."""
        if n > self.count:
            raise ConfigError(f"cannot take {n} of {self.count} queued packets")
        acc: list[tuple[np.ndarray, ...]] = []
        got = 0
        while got < n:
            batch = self._batches[0]
            k = batch[0].shape[0]
            if got + k <= n:
                acc.append(batch)
                self._batches.pop(0)
                got += k
            else:
                need = n - got
                acc.append(tuple(c[:need] for c in batch))
                self._batches[0] = tuple(c[need:] for c in batch)
                got = n
        self.count -= n
        if len(acc) == 1:
            return acc[0]
        return tuple(
            np.concatenate([a[i] for a in acc]) for i in range(len(_COLS))
        )

    def snapshot(self) -> list[tuple[np.ndarray, ...]]:
        return list(self._batches)

    def restore(self, batches: list[tuple[np.ndarray, ...]]) -> None:
        self._batches = list(batches)
        self.count = sum(b[0].shape[0] for b in batches)


# ----------------------------------------------------------------------
class PacketSource:
    """Protocol + shared plumbing for chunked packet producers.

    Subclasses provide the sizing attributes (``num_packets``,
    ``num_flows``, ``num_services``, ``duration_ns``, ``chunk_size``)
    and implement :meth:`next_chunk`, :meth:`clone`, :meth:`snapshot`
    and :meth:`restore`.  A source is a *cursor*: ``next_chunk``
    consumes; pass a fresh :meth:`clone` to each consumer (the kernel
    does this itself).
    """

    num_packets: int
    num_flows: int
    num_services: int
    duration_ns: int
    #: packets per chunk; None means "one whole-workload chunk"
    chunk_size: int | None

    def __init__(self) -> None:
        self._fingerprint_cache: str | None = None

    def next_chunk(self) -> WorkloadChunk | None:
        """The next consecutive chunk, or None when exhausted."""
        raise NotImplementedError

    def clone(self) -> "PacketSource":
        """A fresh, unconsumed source of the same spec."""
        raise NotImplementedError

    def snapshot(self):
        """Picklable mid-stream cursor state (see :meth:`restore`)."""
        raise NotImplementedError

    def restore(self, snapshot) -> None:
        """Reposition this source at a cursor captured by
        :meth:`snapshot` on a same-spec source."""
        raise NotImplementedError

    def iter_chunks(self):
        """Iterate a fresh clone's chunks (does not consume *self*)."""
        src = self.clone()
        while (chunk := src.next_chunk()) is not None:
            yield chunk

    def materialize(self) -> Workload:
        """The full :class:`Workload` this source streams (a fresh
        generation pass; does not consume *self*)."""
        return Workload.from_chunks(
            list(self.iter_chunks()),
            num_flows=self.num_flows,
            num_services=self.num_services,
            duration_ns=self.duration_ns,
        )

    def fingerprint(self) -> str:
        """Streaming blake2b content fingerprint (cached; computed by a
        dedicated O(chunk)-memory generation pass)."""
        if self._fingerprint_cache is None:
            acc = _Fingerprint()
            for chunk in self.iter_chunks():
                acc.add(chunk)
            self._fingerprint_cache = acc.finish(
                self.num_packets, self.duration_ns,
                self.num_flows, self.num_services,
            )
        return self._fingerprint_cache


# ----------------------------------------------------------------------
class MaterializedSource(PacketSource):
    """A :class:`PacketSource` view over an already-built workload.

    With the default ``chunk_size=None`` the whole workload comes back
    as a single chunk (the kernel's fast path); with an explicit size
    the kernel exercises the same windowed consumption a
    :class:`StreamingSource` gets, over zero-copy array views.
    """

    def __init__(self, workload: Workload, chunk_size: int | None = None) -> None:
        super().__init__()
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigError(f"chunk size must be positive, got {chunk_size}")
        self.workload = workload
        self.chunk_size = chunk_size
        self._pos = 0

    @property
    def num_packets(self) -> int:
        return self.workload.num_packets

    @property
    def num_flows(self) -> int:
        return self.workload.num_flows

    @property
    def num_services(self) -> int:
        return self.workload.num_services

    @property
    def duration_ns(self) -> int:
        return self.workload.duration_ns

    def next_chunk(self) -> WorkloadChunk | None:
        wl = self.workload
        pos = self._pos
        if pos >= wl.num_packets:
            return None
        end = wl.num_packets
        if self.chunk_size is not None:
            end = min(pos + self.chunk_size, end)
        self._pos = end
        return WorkloadChunk(
            pos,
            wl.arrival_ns[pos:end], wl.service_id[pos:end],
            wl.flow_id[pos:end], wl.size_bytes[pos:end],
            wl.flow_hash[pos:end], wl.seq[pos:end],
        )

    def clone(self) -> "MaterializedSource":
        return MaterializedSource(self.workload, self.chunk_size)

    def snapshot(self) -> int:
        return self._pos

    def restore(self, snapshot: int) -> None:
        self._pos = int(snapshot)

    def materialize(self) -> Workload:
        return self.workload

    def fingerprint(self) -> str:
        if self._fingerprint_cache is None:
            self._fingerprint_cache = workload_fingerprint(self.workload)
        return self._fingerprint_cache


# ----------------------------------------------------------------------
class StreamingSource(PacketSource):
    """Incremental :func:`~repro.sim.workload.build_workload`.

    Same inputs (parallel per-service traces and Holt-Winters params),
    same output packet sequence bit for bit, but realised as a k-way
    time merge over per-service :class:`ArrivalStream` cursors: each
    merge round advances the service whose next unrealised segment
    starts earliest, then releases every buffered arrival strictly
    below the new safe horizon (see the module docstring for why that
    reproduces the global stable sort).  Memory is O(chunk + segment +
    flows), independent of run length.

    The seed must be reproducible (int / SeedSequence / None) — a live
    ``np.random.Generator`` cannot be rewound, which :meth:`clone`
    requires.
    """

    def __init__(
        self,
        traces: list[Trace],
        params: list[HoltWintersParams],
        duration_ns: int,
        seed: int | np.random.SeedSequence | None = 0,
        hash_spec: CRCSpec = CRC16_CCITT,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        super().__init__()
        if not traces:
            raise ConfigError("need at least one service trace")
        if len(traces) != len(params):
            raise ConfigError(
                f"{len(traces)} traces vs {len(params)} parameter rows"
            )
        if duration_ns <= 0:
            raise ConfigError(f"duration must be positive, got {duration_ns}")
        if chunk_size <= 0:
            raise ConfigError(f"chunk size must be positive, got {chunk_size}")
        if isinstance(seed, np.random.Generator):
            raise ConfigError(
                "StreamingSource needs a reproducible seed (int, "
                "SeedSequence or None), not a live Generator: clone() "
                "must be able to replay the stream from the start"
            )
        for sid, trace in enumerate(traces):
            if trace.num_packets == 0:
                raise ConfigError(f"service {sid} has an empty trace")
        self.traces = list(traces)
        self.params = list(params)
        self.duration_ns = int(duration_ns)
        self.seed = seed
        self.hash_spec = hash_spec
        self.chunk_size = int(chunk_size)
        self.num_services = len(traces)
        offsets = []
        total_flows = 0
        for trace in self.traces:
            offsets.append(total_flows)
            total_flows += trace.num_flows
        self._flow_offsets = offsets
        self.num_flows = total_flows
        self._flow_hashes = [
            service_flow_hashes(t, hash_spec) for t in self.traces
        ]
        self._reset()
        self.num_packets = sum(s.total for s in self._streams)

    # -- cursor lifecycle ----------------------------------------------
    def _reset(self) -> None:
        rngs = spawn_rngs(self.seed, self.num_services)
        self._streams = [
            ArrivalStream(build_rate_model(p), self.duration_ns, rng)
            for p, rng in zip(self.params, rngs)
        ]
        self._cursors = [t.header_cursor() for t in self.traces]
        # per-service pending arrival-time buffers (realised, unreleased)
        self._buffers: list[list[np.ndarray]] = [[] for _ in self.traces]
        self._out = _BatchQueue()
        self._seq_next = np.zeros(self.num_flows, dtype=np.int64)
        self._emitted = 0
        self._merged_done = False

    def clone(self) -> "StreamingSource":
        return StreamingSource(
            self.traces, self.params, self.duration_ns,
            seed=self.seed, hash_spec=self.hash_spec,
            chunk_size=self.chunk_size,
        )

    def snapshot(self) -> dict:
        return {
            "streams": [s.state() for s in self._streams],
            "cursors": [c.position for c in self._cursors],
            "buffers": [list(b) for b in self._buffers],
            "out": self._out.snapshot(),
            "seq_next": self._seq_next.copy(),
            "emitted": self._emitted,
            "merged_done": self._merged_done,
        }

    def restore(self, snapshot: dict) -> None:
        self._reset()
        for stream, state in zip(self._streams, snapshot["streams"]):
            stream.set_state(state)
        self._cursors = [
            t.header_cursor(pos)
            for t, pos in zip(self.traces, snapshot["cursors"])
        ]
        self._buffers = [list(b) for b in snapshot["buffers"]]
        self._out.restore(snapshot["out"])
        self._seq_next = snapshot["seq_next"].copy()
        self._emitted = int(snapshot["emitted"])
        self._merged_done = bool(snapshot["merged_done"])

    # -- the merge ------------------------------------------------------
    def next_chunk(self) -> WorkloadChunk | None:
        while self._out.count < self.chunk_size and not self._merged_done:
            self._merge_round()
        if self._out.count == 0:
            return None
        return self._emit(min(self.chunk_size, self._out.count))

    def _merge_round(self) -> None:
        """Realise segments of the laggard service until the safe
        horizon releases at least one buffered arrival (or all streams
        are exhausted, which flushes everything)."""
        streams = self._streams
        while True:
            laggard, floor_min = -1, _NO_HORIZON
            for sid, stream in enumerate(streams):
                if not stream.exhausted:
                    floor = stream.pending_floor_ns()
                    if floor < floor_min:
                        laggard, floor_min = sid, floor
            if laggard < 0:
                self._release(_NO_HORIZON)
                self._merged_done = True
                return
            times = streams[laggard].next_segment()
            if times.shape[0]:
                self._buffers[laggard].append(times)
            safe = min(
                (s.pending_floor_ns() for s in streams if not s.exhausted),
                default=_NO_HORIZON,
            )
            if self._buffered_before(safe):
                self._release(safe)
                return

    def _buffered_before(self, horizon_ns: int) -> bool:
        for buf in self._buffers:
            # segment arrays arrive in time order, each sorted, so the
            # first element of the first array is the service minimum
            if buf and int(buf[0][0]) < horizon_ns:
                return True
        return False

    def _release(self, horizon_ns: int) -> None:
        """Move every buffered arrival strictly below *horizon_ns* into
        the out queue, headers attached, globally ordered."""
        parts: list[tuple[np.ndarray, ...]] = []
        for sid in range(self.num_services):
            buf = self._buffers[sid]
            if not buf:
                continue
            times = buf[0] if len(buf) == 1 else np.concatenate(buf)
            if horizon_ns >= _NO_HORIZON:
                cut = times.shape[0]
            else:
                cut = int(np.searchsorted(times, horizon_ns, side="left"))
            if cut == 0:
                self._buffers[sid] = [times]
                continue
            self._buffers[sid] = [times[cut:]] if cut < times.shape[0] else []
            take = times[:cut]
            trace = self.traces[sid]
            idx = self._cursors[sid].take(cut)
            local_fids = trace.flow_id[idx]
            parts.append((
                take,
                np.full(cut, sid, dtype=np.int32),
                local_fids + self._flow_offsets[sid],
                trace.size_bytes[idx],
                self._flow_hashes[sid][local_fids],
            ))
        if not parts:
            return
        if len(parts) == 1:
            arrival, service, flow, size, fhash = parts[0]
        else:
            arrival, service, flow, size, fhash = (
                np.concatenate([p[i] for p in parts]) for i in range(5)
            )
        # per-service prefixes concatenated in service order + stable
        # argsort == build_workload's global tie-break
        order = np.argsort(arrival, kind="stable")
        arrival = arrival[order]
        service = service[order]
        flow = flow[order]
        size = size[order].astype(np.int32, copy=False)
        fhash = fhash[order]
        self._out.push(
            (arrival, service, flow, size, fhash, self._next_sequences(flow))
        )

    def _next_sequences(self, flow: np.ndarray) -> np.ndarray:
        """Per-flow 0-based sequence numbers continuing the global
        count (incremental ``_per_flow_sequences``)."""
        n = flow.shape[0]
        counters = self._seq_next
        order = np.argsort(flow, kind="stable")
        sorted_flow = flow[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = sorted_flow[1:] != sorted_flow[:-1]
        starts = np.flatnonzero(first)
        run_lens = np.diff(np.append(starts, n))
        within = np.arange(n, dtype=np.int64) - np.repeat(starts, run_lens)
        run_flows = sorted_flow[starts]
        bases = counters[run_flows]
        counters[run_flows] = bases + run_lens
        seq = np.empty(n, dtype=np.int64)
        seq[order] = np.repeat(bases, run_lens) + within
        return seq

    def _emit(self, n: int) -> WorkloadChunk:
        cols = self._out.take(n)
        base = self._emitted
        self._emitted += n
        return WorkloadChunk(base, *cols)
