"""Core power/energy accounting — the Sec. II power-saving context.

The paper motivates dynamic core allocation partly via traffic-aware
power management ([20], [29]): cores that a service marks surplus can
be clock- or power-gated.  This module turns a simulation report's
per-core utilisation into an energy estimate under three policies, so
the ablation bench can quantify how much head-room LAPS's surplus
tracking creates.

Model: each core burns ``active_w`` while processing, ``idle_w`` while
powered but idle, and ``sleep_w`` when gated.  ``gating_fraction`` of
the idle time is gateable (entering/leaving sleep has latency, so only
long idle stretches — exactly the surplus condition — qualify).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import SimReport

__all__ = ["PowerModel", "PowerReport"]


@dataclass(frozen=True)
class PowerReport:
    """Energy estimate for one simulation run."""

    active_j: float
    idle_j: float
    sleep_j: float
    total_j: float
    baseline_j: float  # no gating at all

    @property
    def savings_fraction(self) -> float:
        """Energy saved relative to the ungated baseline."""
        if self.baseline_j == 0:
            return 0.0
        return 1.0 - self.total_j / self.baseline_j


@dataclass(frozen=True)
class PowerModel:
    """Per-core power states (defaults: a small in-order data-plane
    core at 1 GHz — watts chosen to match embedded-class parts)."""

    active_w: float = 0.75
    idle_w: float = 0.30
    sleep_w: float = 0.02

    def __post_init__(self) -> None:
        if not self.sleep_w <= self.idle_w <= self.active_w:
            raise ValueError(
                "expected sleep_w <= idle_w <= active_w, got "
                f"{self.sleep_w}/{self.idle_w}/{self.active_w}"
            )

    def evaluate(
        self,
        report: SimReport,
        gating_fraction: float = 0.0,
    ) -> PowerReport:
        """Energy for one run.

        ``gating_fraction`` is the share of idle time spent gated
        (0 = no power management; LAPS's surplus tracking typically
        makes most of a quiet core's idle time gateable).
        """
        if not 0.0 <= gating_fraction <= 1.0:
            raise ValueError(
                f"gating_fraction must be in [0, 1], got {gating_fraction}"
            )
        duration_s = report.duration_ns / 1e9
        active_j = idle_j = sleep_j = baseline_j = 0.0
        for util in report.core_utilization:
            util = min(util, 1.0)
            busy_s = util * duration_s
            idle_s = (1.0 - util) * duration_s
            gated_s = idle_s * gating_fraction
            active_j += busy_s * self.active_w
            idle_j += (idle_s - gated_s) * self.idle_w
            sleep_j += gated_s * self.sleep_w
            baseline_j += busy_s * self.active_w + idle_s * self.idle_w
        return PowerReport(
            active_j=active_j,
            idle_j=idle_j,
            sleep_j=sleep_j,
            total_j=active_j + idle_j + sleep_j,
            baseline_j=baseline_j,
        )
