"""Egress packet-order accounting.

A departing packet is **out of order** iff some packet of the same flow
with a smaller per-flow sequence number is still in the system at its
departure — i.e. departure order inverts arrival order within the flow
(the receiver would observe a gap).  Packets lost to full queues leave
the system too: a drop *advances* the expected sequence (the receiver
never sees the dropped packet, so later packets are not "out of order"
relative to it), but the drop itself is never counted as a reorder.

Implementation: per flow, the smallest not-yet-accounted sequence
number plus the set of early (out-of-order) accounted sequences above
it; both updates are amortised O(1) per packet.
"""

from __future__ import annotations

__all__ = ["ReorderDetector"]


class ReorderDetector:
    """Streaming per-flow reorder counter."""

    __slots__ = ("_next_expected", "_pending", "out_of_order", "departed", "accounted")

    def __init__(self) -> None:
        self._next_expected: dict[int, int] = {}
        self._pending: dict[int, set[int]] = {}
        self.out_of_order = 0
        self.departed = 0
        self.accounted = 0

    def _account(self, flow_id: int, seq: int) -> bool:
        """Mark *seq* of *flow_id* as having left the system.

        Returns True when the packet left ahead of an earlier one
        (out of order).
        """
        self.accounted += 1
        expected = self._next_expected.get(flow_id, 0)
        if seq == expected:
            expected += 1
            pending = self._pending.get(flow_id)
            if pending:
                while expected in pending:
                    pending.remove(expected)
                    expected += 1
                if not pending:
                    del self._pending[flow_id]
            self._next_expected[flow_id] = expected
            return False
        if seq < expected or seq in self._pending.get(flow_id, ()):
            raise ValueError(
                f"flow {flow_id} seq {seq} accounted twice (expected >= {expected})"
            )
        self._pending.setdefault(flow_id, set()).add(seq)
        return True

    def on_depart(self, flow_id: int, seq: int) -> bool:
        """Account a departure; returns and counts out-of-order-ness.

        The accounting is :meth:`_account` unrolled in place — this is
        the egress hot path (one call per departed packet) and the
        extra frame is measurable; keep the two bodies in lockstep.
        """
        self.accounted += 1
        self.departed += 1
        expected = self._next_expected.get(flow_id, 0)
        if seq == expected:
            expected += 1
            pending = self._pending.get(flow_id)
            if pending:
                while expected in pending:
                    pending.remove(expected)
                    expected += 1
                if not pending:
                    del self._pending[flow_id]
            self._next_expected[flow_id] = expected
            return False
        if seq < expected or seq in self._pending.get(flow_id, ()):
            raise ValueError(
                f"flow {flow_id} seq {seq} accounted twice (expected >= {expected})"
            )
        self._pending.setdefault(flow_id, set()).add(seq)
        self.out_of_order += 1
        return True

    def on_drop(self, flow_id: int, seq: int) -> None:
        """Account a drop (advances sequencing, never counts as OOO)."""
        self._account(flow_id, seq)

    @property
    def in_flight_gaps(self) -> int:
        """Number of sequences accounted early whose predecessors are
        still in the system (diagnostic)."""
        return sum(len(s) for s in self._pending.values())

    def ooo_fraction(self) -> float:
        """Out-of-order departures / total departures (0 when none)."""
        if self.departed == 0:
            return 0.0
        return self.out_of_order / self.departed
