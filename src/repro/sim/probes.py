"""Time-series probes: sample simulator state on a fixed period.

A probe turns a run into the "metric over time" curves papers plot:
queue occupancies, cumulative drops/departures, per-core backlog.  The
simulator calls :meth:`QueueProbe.maybe_sample` as simulated time
advances; samples land in plain numpy-convertible lists.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["QueueProbe"]


class QueueProbe:
    """Periodic sampler of queue occupancy and progress counters."""

    def __init__(self, period_ns: int) -> None:
        if period_ns <= 0:
            raise ConfigError(f"probe period must be positive, got {period_ns}")
        self.period_ns = period_ns
        self.times_ns: list[int] = []
        self.occupancies: list[list[int]] = []
        self.dropped: list[int] = []
        self.departed: list[int] = []
        self._next_ns = 0

    def maybe_sample(self, t_ns: int, queues, metrics) -> None:
        """Record at most one row when *t_ns* crossed a period boundary.

        The sample is timestamped with the actual observation time
        ``t_ns``.  Boundaries skipped over between calls (sparse
        arrivals) are *not* backfilled — present state must never be
        attributed to past timestamps; resample offline with explicit
        carry-forward if a uniform grid is needed.
        """
        if t_ns < self._next_ns:
            return
        self.times_ns.append(t_ns)
        self.occupancies.append(queues.occupancies())
        self.dropped.append(metrics.dropped)
        self.departed.append(metrics.departed)
        # first grid boundary strictly after t_ns
        self._next_ns = (t_ns // self.period_ns + 1) * self.period_ns

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return len(self.times_ns)

    def to_records(self) -> list[dict]:
        """Rows as dicts (``repro.obs.export.write_run`` input)."""
        return [
            {"t_ns": t, "occupancy": occ, "dropped": drop, "departed": dep}
            for t, occ, drop, dep in zip(
                self.times_ns, self.occupancies, self.dropped, self.departed
            )
        ]

    def occupancy_matrix(self) -> np.ndarray:
        """(samples, cores) int array of queue depths."""
        if not self.occupancies:
            return np.empty((0, 0), dtype=np.int64)
        return np.asarray(self.occupancies, dtype=np.int64)

    def drop_rate_series(self) -> np.ndarray:
        """Drops per period (discrete derivative of the cumulative)."""
        d = np.asarray(self.dropped, dtype=np.int64)
        if d.size == 0:
            return d
        return np.diff(d, prepend=0)

    def imbalance_series(self) -> np.ndarray:
        """Per-sample max-min queue spread (the balancer's target)."""
        occ = self.occupancy_matrix()
        if occ.size == 0:
            return np.empty(0, dtype=np.int64)
        return occ.max(axis=1) - occ.min(axis=1)
