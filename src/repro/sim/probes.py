"""Time-series probes: sample simulator state on a fixed period.

A probe turns a run into the "metric over time" curves papers plot:
queue occupancies, cumulative drops/departures, per-core backlog.  The
simulator calls :meth:`QueueProbe.maybe_sample` as simulated time
advances; samples land in plain numpy-convertible lists.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["QueueProbe"]


class QueueProbe:
    """Periodic sampler of queue occupancy and progress counters."""

    def __init__(self, period_ns: int) -> None:
        if period_ns <= 0:
            raise ConfigError(f"probe period must be positive, got {period_ns}")
        self.period_ns = period_ns
        self.times_ns: list[int] = []
        self.occupancies: list[list[int]] = []
        self.dropped: list[int] = []
        self.departed: list[int] = []
        self._next_ns = 0

    def maybe_sample(self, t_ns: int, queues, metrics) -> None:
        """Record one row per elapsed period boundary up to *t_ns*."""
        while self._next_ns <= t_ns:
            self.times_ns.append(self._next_ns)
            self.occupancies.append(queues.occupancies())
            self.dropped.append(metrics.dropped)
            self.departed.append(metrics.departed)
            self._next_ns += self.period_ns

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return len(self.times_ns)

    def occupancy_matrix(self) -> np.ndarray:
        """(samples, cores) int array of queue depths."""
        if not self.occupancies:
            return np.empty((0, 0), dtype=np.int64)
        return np.asarray(self.occupancies, dtype=np.int64)

    def drop_rate_series(self) -> np.ndarray:
        """Drops per period (discrete derivative of the cumulative)."""
        d = np.asarray(self.dropped, dtype=np.int64)
        if d.size == 0:
            return d
        return np.diff(d, prepend=0)

    def imbalance_series(self) -> np.ndarray:
        """Per-sample max-min queue spread (the balancer's target)."""
        occ = self.occupancy_matrix()
        if occ.size == 0:
            return np.empty(0, dtype=np.int64)
        return occ.max(axis=1) - occ.min(axis=1)
