"""Simulation metrics: counters accumulated during a run and the final
:class:`SimReport` the experiment harness consumes.

Everything Figs. 7 and 9 plot is here: packets dropped, out-of-order
departures, cold-cache fraction, flow migrations — plus supporting
signals (latency summary, per-core utilisation, Jain fairness of load).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.stats import jain_fairness, summarize

__all__ = ["SimMetrics", "SimReport"]


class SimMetrics:
    """Mutable counters the simulator updates in its hot loop."""

    __slots__ = (
        "num_services",
        "num_cores",
        "generated",
        "dropped",
        "departed",
        "cold_cache_events",
        "flow_migration_events",
        "generated_per_service",
        "dropped_per_service",
        "busy_ns_per_core",
        "latencies_ns",
        "last_depart_ns",
        "fault_dropped",
    )

    def __init__(self, num_services: int, num_cores: int) -> None:
        self.num_services = num_services
        self.num_cores = num_cores
        self.generated = 0
        self.dropped = 0
        self.departed = 0
        self.cold_cache_events = 0
        self.flow_migration_events = 0
        #: subset of ``dropped`` attributable to injected faults: packets
        #: killed in service on a failing core, descriptors drained from
        #: its queue, and packets later offered to a dead core's queue
        #: (see :mod:`repro.faults`)
        self.fault_dropped = 0
        self.generated_per_service = [0] * num_services
        self.dropped_per_service = [0] * num_services
        self.busy_ns_per_core = [0] * num_cores
        self.latencies_ns: list[int] = []
        self.last_depart_ns = 0

    def finalize(
        self,
        *,
        duration_ns: int,
        out_of_order: int,
        scheduler_name: str,
        scheduler_stats: dict[str, float],
        migrated_flows: int,
        departures: tuple[tuple[int, int, int], ...] = (),
        drop_records: tuple[tuple[int, int, int], ...] = (),
    ) -> "SimReport":
        """Freeze the counters into an immutable report.

        Utilisation divides busy time by the *observed* horizon — the
        workload duration extended to the last departure when the drain
        phase ran past it — so a core can never exceed 1.0 just because
        it kept serving queued packets after the last arrival.
        """
        observed_ns = max(duration_ns, self.last_depart_ns)
        util = [
            b / observed_ns if observed_ns > 0 else 0.0 for b in self.busy_ns_per_core
        ]
        lat = (
            summarize(self.latencies_ns)
            if self.latencies_ns
            else {k: 0.0 for k in ("mean", "min", "max", "p50", "p95", "p99")}
        )
        return SimReport(
            scheduler=scheduler_name,
            duration_ns=duration_ns,
            observed_ns=observed_ns,
            generated=self.generated,
            dropped=self.dropped,
            departed=self.departed,
            out_of_order=out_of_order,
            cold_cache_events=self.cold_cache_events,
            flow_migration_events=self.flow_migration_events,
            migrated_flows=migrated_flows,
            generated_per_service=tuple(self.generated_per_service),
            dropped_per_service=tuple(self.dropped_per_service),
            core_utilization=tuple(util),
            latency_ns=lat,
            scheduler_stats=dict(scheduler_stats),
            departures=departures,
            drop_records=drop_records,
            fault_dropped=self.fault_dropped,
        )


@dataclass(frozen=True)
class SimReport:
    """Immutable result of one simulation run."""

    scheduler: str
    duration_ns: int
    generated: int
    dropped: int
    departed: int
    out_of_order: int
    cold_cache_events: int
    flow_migration_events: int
    migrated_flows: int
    generated_per_service: tuple[int, ...]
    dropped_per_service: tuple[int, ...]
    core_utilization: tuple[float, ...]
    #: utilisation horizon: ``max(duration_ns, last departure)`` — the
    #: denominator of ``core_utilization`` (covers the drain phase).
    observed_ns: int = 0
    latency_ns: dict[str, float] = field(default_factory=dict)
    scheduler_stats: dict[str, float] = field(default_factory=dict)
    #: egress sequence (flow_id, seq, depart_ns), only when
    #: ``SimConfig.record_departures`` was set.
    departures: tuple[tuple[int, int, int], ...] = ()
    #: queue-overflow losses (flow_id, seq, drop_ns), same gate.
    drop_records: tuple[tuple[int, int, int], ...] = ()
    #: subset of ``dropped`` attributable to injected faults (0 when the
    #: run had no :class:`~repro.faults.FaultInjector` attached).
    fault_dropped: int = 0

    # ------------------------------------------------------------------
    @property
    def drop_fraction(self) -> float:
        """Packets dropped / packets offered (Fig. 7a's metric)."""
        return self.dropped / self.generated if self.generated else 0.0

    @property
    def ooo_fraction(self) -> float:
        """Out-of-order departures / departures (Fig. 7c's metric)."""
        return self.out_of_order / self.departed if self.departed else 0.0

    @property
    def cold_cache_fraction(self) -> float:
        """Packets that paid the cold-cache penalty / departures
        (Fig. 7b's metric — "almost 60% of packets suffer from cold
        cache penalties" under FCFS/AFS)."""
        return self.cold_cache_events / self.departed if self.departed else 0.0

    @property
    def migration_fraction(self) -> float:
        """Packets that paid the flow-migration penalty / departures."""
        return self.flow_migration_events / self.departed if self.departed else 0.0

    @property
    def throughput_pps(self) -> float:
        """Departures per second of model time."""
        if self.duration_ns <= 0:
            return 0.0
        return self.departed / (self.duration_ns / 1e9)

    @property
    def load_fairness(self) -> float:
        """Jain fairness index of per-core busy time."""
        return jain_fairness(self.core_utilization)

    def as_row(self) -> dict[str, float | str]:
        """Flat dict for table rendering."""
        return {
            "scheduler": self.scheduler,
            "generated": self.generated,
            "dropped": self.dropped,
            "drop_frac": self.drop_fraction,
            "departed": self.departed,
            "ooo": self.out_of_order,
            "ooo_frac": self.ooo_fraction,
            "cold_frac": self.cold_cache_fraction,
            "migrations": self.flow_migration_events,
            "migrated_flows": self.migrated_flows,
            "fairness": self.load_fairness,
            "p99_latency_us": self.latency_ns.get("p99", 0.0) / 1e3,
        }

    def relative_to(self, baseline: "SimReport") -> dict[str, float]:
        """Ratios against a baseline run (Fig. 9 plots these).

        NaN where the baseline never triggered the event.
        """
        def ratio(a: float, b: float) -> float:
            return a / b if b else float("nan")

        return {
            "dropped": ratio(self.dropped, baseline.dropped),
            "out_of_order": ratio(self.out_of_order, baseline.out_of_order),
            "flow_migrations": ratio(
                self.flow_migration_events, baseline.flow_migration_events
            ),
            "migrated_flows": ratio(self.migrated_flows, baseline.migrated_flows),
        }
