"""``python -m repro.sim`` — see :mod:`repro.sim.cli`."""

from repro.sim.cli import main

raise SystemExit(main())
