"""The steppable simulation kernel.

:class:`SimState` owns every piece of live run state — core arrays,
per-flow placement memory, the queue bank, the event heap, metrics and
the reorder detector — as plain fields instead of run-loop closure
locals.  :class:`SimKernel` drives that state through ``step()`` /
``run_until(t_ns)`` / ``run()``: the arrival loop and the drain phase
are ordinary methods, and everything that observes or perturbs the run
(probes, fault injectors, scheduler queue-edge callbacks) registers on
one :class:`~repro.sim.hooks.HookBus` instead of poking attributes onto
the simulator.

Two properties are preserved from the original monolithic loop:

* **hot-loop cost** — at activation the kernel compiles ``start_packet``
  and ``complete_until`` as closures over the state containers (lists,
  dicts, arrays mutated in place), so the per-packet path performs no
  ``self.`` attribute lookups and allocates no per-packet objects;
* **determinism** — advancing in any sequence of ``run_until`` horizons
  produces bit-identical results to one uninterrupted ``run()``,
  because events are popped in the same global time order either way.
  That equivalence is what makes checkpoint/resume exact.

Checkpointing: :meth:`SimKernel.checkpoint` pickles the state graph —
``SimState`` *and* the scheduler *and* the injector in one blob, so
shared references (the scheduler's bound ``LoadView`` is the state's
queue bank) survive the round trip — and stamps it with config/workload
fingerprints.  :meth:`SimKernel.resume` restores the blob against the
same config and workload (which are deliberately *not* serialized:
they are large, immutable, and reconstructible) and continues the run;
the resumed run's :class:`~repro.sim.metrics.SimReport` is identical to
an uninterrupted one.  See ``docs/architecture.md``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.schedulers.base import Scheduler
from repro.sim.config import SimConfig
from repro.sim.engine import EventQueue
from repro.sim.hooks import HookBus
from repro.sim.metrics import SimMetrics, SimReport
from repro.sim.queues import QueueBank
from repro.sim.reorder import ReorderDetector
from repro.sim.workload import Workload

__all__ = ["SimState", "SimKernel", "Checkpoint", "CHECKPOINT_VERSION"]

#: bump when the pickled state layout changes incompatibly
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
@dataclass
class SimState:
    """All live state of one simulation run, explicitly owned.

    Everything the run loop mutates lives here — nothing hides in
    closure locals or instance attributes of the kernel.  The whole
    object (together with the scheduler and injector sharing its
    references) pickles into a :class:`Checkpoint`.
    """

    #: horizon up to which the run has advanced (``run_until`` bound)
    now_ns: int
    #: index of the next workload arrival to dispatch
    next_arrival: int
    #: the drain phase has completed
    drained: bool
    core_busy: list[bool]
    core_last_service: list[int]
    core_speed: list[float]
    core_current_pkt: list[int]
    #: in-flight packets tombstoned by a core failure
    killed_pkts: set[int]
    flow_last_core: np.ndarray
    flow_migrated: np.ndarray
    queues: QueueBank
    events: EventQueue
    metrics: SimMetrics
    reorder: ReorderDetector
    departures: list[tuple[int, int, int]]
    drop_records: list[tuple[int, int, int]]

    @classmethod
    def initial(cls, config: SimConfig, workload: Workload) -> "SimState":
        """Fresh pre-run state for *config* and *workload*."""
        n_cores = config.num_cores
        return cls(
            now_ns=0,
            next_arrival=0,
            drained=False,
            core_busy=[False] * n_cores,
            core_last_service=[-1] * n_cores,
            core_speed=[1.0] * n_cores,
            core_current_pkt=[-1] * n_cores,
            killed_pkts=set(),
            flow_last_core=np.full(workload.num_flows, -1, dtype=np.int32),
            flow_migrated=np.zeros(workload.num_flows, dtype=bool),
            queues=QueueBank(config.num_cores, config.queue_capacity),
            events=EventQueue(),
            metrics=SimMetrics(len(config.services), config.num_cores),
            reorder=ReorderDetector(),
            departures=[],
            drop_records=[],
        )


# ----------------------------------------------------------------------
def _config_fingerprint(config: SimConfig) -> str:
    svc = ",".join(
        f"{config.services[s].base_ns}+{config.services[s].per_64b_ns}"
        for s in range(len(config.services))
    )
    return (
        f"cores={config.num_cores};cap={config.queue_capacity};"
        f"fm={config.fm_penalty_ns};cc={config.cc_penalty_ns};"
        f"drain={config.drain_ns};lat={int(config.collect_latencies)};"
        f"dep={int(config.record_departures)};svc=[{svc}]"
    )


def _workload_fingerprint(workload: Workload) -> str:
    n = workload.num_packets
    arr_sum = int(workload.arrival_ns.sum()) if n else 0
    flow_sum = int(workload.flow_id.sum()) if n else 0
    return (
        f"n={n};dur={workload.duration_ns};flows={workload.num_flows};"
        f"svcs={workload.num_services};asum={arr_sum};fsum={flow_sum}"
    )


@dataclass(frozen=True)
class Checkpoint:
    """A paused run, serialized: resume it with :meth:`SimKernel.resume`.

    The ``blob`` pickles ``(SimState, scheduler, injector)`` in one
    object graph; config and workload are validated by fingerprint at
    resume time rather than stored.  ``to_bytes``/``from_bytes`` give a
    file-ready wire form.
    """

    version: int
    time_ns: int
    blob: bytes
    config_fingerprint: str
    workload_fingerprint: str

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Checkpoint":
        obj = pickle.loads(raw)
        if not isinstance(obj, cls):
            raise SimulationError(
                f"not a simulation checkpoint: {type(obj).__name__}"
            )
        if obj.version != CHECKPOINT_VERSION:
            raise SimulationError(
                f"checkpoint version {obj.version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return obj


# ----------------------------------------------------------------------
def _no_timed_handler(event, t_ns):  # pragma: no cover - defensive
    raise SimulationError(
        f"timed event {event!r} at {t_ns} ns but no handler is subscribed"
    )


class SimKernel:
    """Steppable network-processor simulation over an explicit state.

    Lifecycle: construct (fresh state, scheduler bound and subscribed
    to the bus) → optionally :meth:`attach_probe` / :meth:`attach_injector`
    → any mix of :meth:`step` / :meth:`run_until` / :meth:`run` →
    :class:`~repro.sim.metrics.SimReport`.  :meth:`checkpoint` may be
    called between advances; :meth:`resume` restores one.

    The kernel itself satisfies the sampler view protocol (``queues``,
    ``metrics``, ``scheduler``, ``reorder``, ``injector`` attributes),
    so rich probes bind to it directly.
    """

    def __init__(
        self,
        config: SimConfig,
        scheduler: Scheduler,
        workload: Workload,
        *,
        bus: HookBus | None = None,
        state: SimState | None = None,
        _resumed: bool = False,
    ) -> None:
        if workload.num_services > len(config.services):
            raise ConfigError(
                f"workload uses {workload.num_services} services but the "
                f"config defines only {len(config.services)}"
            )
        self.config = config
        self.scheduler = scheduler
        self.workload = workload
        self.bus = bus if bus is not None else HookBus()
        self.state = state if state is not None else SimState.initial(config, workload)
        self.injector = None
        self._finished = False
        self._start_packet = None
        self._complete_until = None
        if not _resumed:
            # a restored scheduler is already bound to the restored
            # queue bank (shared pickle graph); re-binding would reset
            # its placement state
            scheduler.bind(self.state.queues)
        scheduler.register_hooks(self.bus)

    # -- sampler view protocol -----------------------------------------
    @property
    def queues(self) -> QueueBank:
        return self.state.queues

    @property
    def metrics(self) -> SimMetrics:
        return self.state.metrics

    @property
    def reorder(self) -> ReorderDetector:
        return self.state.reorder

    @property
    def events_popped(self) -> int:
        """Heap events popped so far (profiling signal)."""
        return self.state.events.popped

    @property
    def now_ns(self) -> int:
        return self.state.now_ns

    @property
    def finished(self) -> bool:
        return self._finished

    # -- hook attachment -----------------------------------------------
    def attach_probe(self, probe) -> None:
        """Register a periodic sampler on the bus.

        Accepts anything with ``maybe_sample(t_ns, queues, metrics)``
        (:class:`repro.sim.probes.QueueProbe`,
        :class:`repro.obs.TelemetryProbe`, ...).  A probe with a
        ``bind`` method is bound to the kernel so its samplers see the
        scheduler, reorder detector and injector too.
        """
        if probe is None:
            return
        if hasattr(probe, "bind"):
            probe.bind(self)
        queues = self.state.queues
        metrics = self.state.metrics
        maybe_sample = probe.maybe_sample

        def sample(t_ns: int) -> None:
            maybe_sample(t_ns, queues, metrics)

        self.bus.subscribe(
            "sample", sample, period_ns=getattr(probe, "period_ns", None)
        )

    def attach_injector(self, injector, *, resumed: bool = False) -> None:
        """Bind a :class:`repro.faults.FaultInjector` to this run.

        The injector validates its schedule against the config, pushes
        its timed events into the heap (skipped on resume — they are
        already in the restored heap) and subscribes to ``timed_event``.
        """
        if injector is None:
            return
        if self.injector is not None:
            raise SimulationError("a kernel takes at most one injector")
        self.injector = injector
        injector.bind(self, schedule_events=not resumed)
        self.bus.subscribe("timed_event", injector.apply)

    # -- activation: compile the hot loop ------------------------------
    def _activate(self) -> None:
        """Compile ``start_packet`` / ``complete_until`` over the state.

        Closures capture the state *containers* (mutated in place), so
        the per-packet path touches only locals — the original loop's
        no-attribute-lookup property.  Re-run after :meth:`resume` to
        re-close over the restored containers.
        """
        self.bus.freeze()
        cfg = self.config
        st = self.state
        wl = self.workload
        services = cfg.services
        base_ns = [services[s].base_ns for s in range(len(services))]
        per64_ns = [services[s].per_64b_ns for s in range(len(services))]
        fm_pen = cfg.fm_penalty_ns
        cc_pen = cfg.cc_penalty_ns
        core_busy = st.core_busy
        core_last_service = st.core_last_service
        core_speed = st.core_speed
        core_current_pkt = st.core_current_pkt
        killed_pkts = st.killed_pkts
        flow_last_core = st.flow_last_core
        flow_migrated = st.flow_migrated
        queues = st.queues
        events = st.events
        metrics = st.metrics
        reorder = st.reorder
        arrival = wl.arrival_ns
        service = wl.service_id
        flow = wl.flow_id
        size = wl.size_bytes
        seq = wl.seq
        collect_lat = cfg.collect_latencies
        latencies = metrics.latencies_ns
        record_dep = cfg.record_departures
        departures = st.departures
        on_queue_empty = self.bus.dispatcher("queue_empty")
        dispatch_timed = self.bus.dispatcher("timed_event") or _no_timed_handler

        def start_packet(core: int, pkt: int, t_ns: int) -> None:
            """Begin service of packet *pkt* on *core* at *t_ns*."""
            sid = int(service[pkt])
            fid = int(flow[pkt])
            t_proc = base_ns[sid]
            p64 = per64_ns[sid]
            if p64:
                t_proc += round(p64 * int(size[pkt]) / 64)
            last = flow_last_core[fid]
            migrated = last >= 0 and last != core
            if migrated:
                t_proc += fm_pen
                metrics.flow_migration_events += 1
                flow_migrated[fid] = True
            flow_last_core[fid] = core
            if core_last_service[core] != sid:
                if core_last_service[core] >= 0:
                    t_proc += cc_pen
                    metrics.cold_cache_events += 1
                core_last_service[core] = sid
            speed = core_speed[core]
            if speed != 1.0:  # degraded core (repro.faults CoreSlowdown)
                t_proc = int(round(t_proc * speed))
            core_busy[core] = True
            core_current_pkt[core] = pkt
            metrics.busy_ns_per_core[core] += t_proc
            events.push(t_ns + t_proc, (core, pkt))

        def complete_until(horizon_ns: int) -> None:
            """Drain heap events with time <= horizon in time order."""
            for t_done, (core, pkt) in events.pop_until(horizon_ns):
                if core < 0:  # timed platform event, not a completion
                    dispatch_timed(pkt, t_done)
                    continue
                if killed_pkts and pkt in killed_pkts:
                    killed_pkts.discard(pkt)  # died with its core
                    continue
                metrics.departed += 1
                metrics.last_depart_ns = t_done  # pops are time-ordered
                reorder.on_depart(int(flow[pkt]), int(seq[pkt]))
                if collect_lat:
                    latencies.append(t_done - int(arrival[pkt]))
                if record_dep:
                    departures.append((int(flow[pkt]), int(seq[pkt]), t_done))
                q = queues[core]
                if q.is_empty:
                    core_busy[core] = False
                    core_current_pkt[core] = -1
                    if on_queue_empty is not None:
                        on_queue_empty(core, t_done)
                else:
                    start_packet(core, q.take(), t_done)

        self._start_packet = start_packet
        self._complete_until = complete_until

    @property
    def active(self) -> bool:
        """The hot loop has been compiled (hook set is frozen)."""
        return self._start_packet is not None

    def start_packet(self, core: int, pkt: int, t_ns: int) -> None:
        """Begin service of *pkt* on *core* (injector reassignment path)."""
        if self._start_packet is None:
            self._activate()
        self._start_packet(core, pkt, t_ns)

    # -- advancing the run ---------------------------------------------
    def run_until(self, t_ns: int) -> None:
        """Advance the run to *t_ns*.

        Dispatches every arrival with ``arrival_ns <= t_ns`` — each
        preceded by the completions and timed events due by then, in
        strict time order — then drains remaining heap events up to
        *t_ns*.  Splitting a run across any sequence of horizons yields
        state (and ultimately a report) identical to one uninterrupted
        :meth:`run`.
        """
        if self._finished:
            raise SimulationError("kernel already finished")
        if self._start_packet is None:
            self._activate()
        st = self.state
        if t_ns < st.now_ns:
            raise SimulationError(
                f"run_until({t_ns}) is behind current time {st.now_ns}"
            )
        cfg = self.config
        wl = self.workload
        sched = self.scheduler
        arrival = wl.arrival_ns
        service = wl.service_id
        flow = wl.flow_id
        fhash = wl.flow_hash
        seq = wl.seq
        n = wl.num_packets
        n_cores = cfg.num_cores
        record_dep = cfg.record_departures
        complete_until = self._complete_until
        start_packet = self._start_packet
        metrics = st.metrics
        queues = st.queues
        reorder = st.reorder
        core_busy = st.core_busy
        drop_records = st.drop_records
        gen_per_service = metrics.generated_per_service
        drop_per_service = metrics.dropped_per_service
        sample = self.bus.dispatcher("sample")
        on_queue_busy = self.bus.dispatcher("queue_busy")
        i = st.next_arrival
        try:
            while i < n:
                t = int(arrival[i])
                if t > t_ns:
                    break
                complete_until(t)
                if sample is not None:
                    sample(t)
                metrics.generated += 1
                sid = int(service[i])
                gen_per_service[sid] += 1
                core = sched.select_core(int(flow[i]), sid, int(fhash[i]), t)
                if not 0 <= core < n_cores:
                    raise SimulationError(
                        f"{sched.name} returned core {core} of {n_cores}"
                    )
                if core_busy[core]:
                    q = queues[core]
                    if q.is_empty and on_queue_busy is not None:
                        on_queue_busy(core, t)
                    if not q.offer(i):
                        metrics.dropped += 1
                        drop_per_service[sid] += 1
                        if q.down:  # black-holed: the target core is dead
                            metrics.fault_dropped += 1
                        reorder.on_drop(int(flow[i]), int(seq[i]))
                        if record_dep:
                            drop_records.append((int(flow[i]), int(seq[i]), t))
                else:
                    if on_queue_busy is not None:
                        on_queue_busy(core, t)
                    start_packet(core, i, t)
                i += 1
        finally:
            st.next_arrival = i
        complete_until(t_ns)
        st.now_ns = t_ns

    def next_event_ns(self) -> int | None:
        """Time of the next pending instant (arrival or heap event),
        or None when nothing is left."""
        st = self.state
        nxt = st.events.peek_time()
        if st.next_arrival < self.workload.num_packets:
            t_arr = int(self.workload.arrival_ns[st.next_arrival])
            nxt = t_arr if nxt is None else min(nxt, t_arr)
        return nxt

    def step(self) -> int | None:
        """Advance to the next event instant and process everything due
        at it; returns that time, or None when the run is quiescent.

        Note: unbounded stepping runs past the drain bound the full
        :meth:`run` would stop at — clamp against
        ``last_arrival + config.drain_ns`` to reproduce ``run()``'s
        abandonment of late in-flight packets.
        """
        nxt = self.next_event_ns()
        if nxt is None:
            return None
        self.run_until(nxt)
        return nxt

    # -- drain + report -------------------------------------------------
    def _drain(self, last_arrival_ns: int) -> None:
        """Serve queued work after the last arrival (bounded).

        With a periodic ``sample`` hook the drain advances one sample
        period at a time so time series keep covering departures after
        the last arrival; an empty heap means nothing is in flight (a
        non-empty queue implies a busy core, which implies a pending
        completion), so further boundaries would only repeat a frozen
        state.
        """
        cfg = self.config
        st = self.state
        events = st.events
        complete_until = self._complete_until
        sample = self.bus.dispatcher("sample")
        drain_end = last_arrival_ns + cfg.drain_ns
        if sample is not None and cfg.drain_ns > 0:
            step = self.bus.sample_period_ns or cfg.drain_ns
            t = last_arrival_ns + step
            while t <= st.now_ns:  # resumed mid-drain: catch up first
                t += step
            # stop early when the next heap event is past the drain
            # bound: nothing can change before drain_end
            while t < drain_end and events:
                nxt = events.peek_time()
                if nxt is not None and nxt > drain_end:
                    break
                complete_until(t)
                sample(t)
                t += step
        if drain_end > st.now_ns:
            complete_until(drain_end)
            st.now_ns = drain_end
        if sample is not None:
            sample(max(drain_end, st.now_ns))
        st.drained = True
        # anything still in flight past the drain bound is abandoned
        # unscored (counted as neither departed nor dropped)

    def run(self) -> SimReport:
        """Advance to completion (arrivals, then drain) and report.

        Continues from wherever previous ``step``/``run_until`` calls —
        or a restored checkpoint — left the state.
        """
        if self._finished:
            raise SimulationError("kernel already finished")
        if self._start_packet is None:
            self._activate()
        st = self.state
        wl = self.workload
        last_t = int(wl.arrival_ns[-1]) if wl.num_packets else 0
        if last_t > st.now_ns or st.next_arrival < wl.num_packets:
            self.run_until(max(last_t, st.now_ns))
        self._drain(last_t)
        return self.finalize()

    def finalize(self) -> SimReport:
        """Freeze the metrics into the immutable report (once)."""
        if self._finished:
            raise SimulationError("kernel already finished")
        self._finished = True
        st = self.state
        return st.metrics.finalize(
            duration_ns=self.workload.duration_ns,
            out_of_order=st.reorder.out_of_order,
            scheduler_name=self.scheduler.name,
            scheduler_stats=self.scheduler.stats(),
            migrated_flows=int(st.flow_migrated.sum()),
            departures=tuple(st.departures),
            drop_records=tuple(st.drop_records),
        )

    # -- checkpoint / resume --------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Serialize the paused run (between advances) for later resume.

        Probes are *not* captured — re-attach fresh ones at resume; the
        time series restarts but the simulation outcome is unaffected
        (sampling never mutates run state).
        """
        if self._finished:
            raise SimulationError("cannot checkpoint a finished run")
        payload = (self.state, self.scheduler, self.injector)
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SimulationError(
                f"run state is not serializable: {exc}"
            ) from exc
        return Checkpoint(
            version=CHECKPOINT_VERSION,
            time_ns=self.state.now_ns,
            blob=blob,
            config_fingerprint=_config_fingerprint(self.config),
            workload_fingerprint=_workload_fingerprint(self.workload),
        )

    @classmethod
    def resume(
        cls,
        checkpoint: Checkpoint,
        config: SimConfig,
        workload: Workload,
        *,
        probe=None,
        bus: HookBus | None = None,
    ) -> "SimKernel":
        """Rebuild a kernel from *checkpoint* and continue the run.

        *config* and *workload* must be the ones the checkpointed run
        used (validated by fingerprint).  The scheduler and injector
        come back from the checkpoint with their state intact.
        """
        if checkpoint.version != CHECKPOINT_VERSION:
            raise SimulationError(
                f"checkpoint version {checkpoint.version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if _config_fingerprint(config) != checkpoint.config_fingerprint:
            raise SimulationError(
                "checkpoint was taken under a different SimConfig"
            )
        if _workload_fingerprint(workload) != checkpoint.workload_fingerprint:
            raise SimulationError(
                "checkpoint was taken against a different workload"
            )
        state, scheduler, injector = pickle.loads(checkpoint.blob)
        kernel = cls(
            config, scheduler, workload, bus=bus, state=state, _resumed=True
        )
        if injector is not None:
            kernel.attach_injector(injector, resumed=True)
        if probe is not None:
            kernel.attach_probe(probe)
        return kernel
