"""The steppable simulation kernel.

:class:`SimState` owns every piece of live run state — core arrays,
per-flow placement memory, the queue bank, the event heap, metrics and
the reorder detector — as plain fields instead of run-loop closure
locals.  :class:`SimKernel` drives that state through ``step()`` /
``run_until(t_ns)`` / ``run()``: the arrival loop and the drain phase
are ordinary methods, and everything that observes or perturbs the run
(probes, fault injectors, scheduler queue-edge callbacks) registers on
one :class:`~repro.sim.hooks.HookBus` instead of poking attributes onto
the simulator.

The kernel consumes packets through a
:class:`~repro.sim.source.PacketSource`: a plain
:class:`~repro.sim.workload.Workload` is wrapped in a
:class:`~repro.sim.source.MaterializedSource` whose single whole-run
chunk reproduces the historical in-memory path, while a
:class:`~repro.sim.source.StreamingSource` feeds the same packet
sequence chunk by chunk at O(chunk) memory.  Live chunks form the
**arrival window** (``kernel.window``): arrivals dispatch from it,
in-flight packet indices stay global, and a chunk is retired as soon as
every packet it holds is dead (dispatched, departed or dropped), which
bounds resident workload memory for streamed runs.

Two properties are preserved from the original monolithic loop:

* **hot-loop cost** — at activation the kernel compiles ``start_packet``
  and ``complete_until`` as closures over the state containers (lists,
  dicts, arrays mutated in place), so the per-packet path performs no
  ``self.`` attribute lookups and allocates no per-packet objects; the
  closures re-compile only when the window slides (once per chunk).
  On top of that sits the **epoch-cached vectorized scheduling** fast
  path: for schedulers implementing
  :meth:`~repro.schedulers.base.Scheduler.assign_batch` the kernel
  plans a ``core_of`` column for the window suffix in one vector call
  and the arrival loop consumes it instead of calling ``select_core``
  per packet, re-planning whenever the scheduler's ``map_epoch`` shows
  a table mutation (see ``docs/performance.md``);
* **determinism** — advancing in any sequence of ``run_until`` horizons
  produces bit-identical results to one uninterrupted ``run()``,
  because events are popped in the same global time order either way,
  and a streamed run is bit-identical to a materialized one because the
  sources produce identical packet sequences.  That equivalence is what
  makes checkpoint/resume exact.

Checkpointing: :meth:`SimKernel.checkpoint` pickles the state graph —
``SimState`` *and* the scheduler *and* the injector in one blob, so
shared references (the scheduler's bound ``LoadView`` is the state's
queue bank) survive the round trip — and stamps it with config/workload
fingerprints (the workload fingerprint is the streaming digest of
:func:`~repro.sim.source.workload_fingerprint`, identical across
materialized and streamed builds of the same spec).  For a streaming
source the blob also carries the source cursor and the live window, so
resume continues generation mid-chunk without replay.
:meth:`SimKernel.resume` restores the blob against the same config and
workload-or-source (which are deliberately *not* serialized: they are
large or regenerable) and continues the run; the resumed run's
:class:`~repro.sim.metrics.SimReport` is identical to an uninterrupted
one, even resuming a streamed checkpoint against a materialized
workload or vice versa.  See ``docs/architecture.md``.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.schedulers.base import Scheduler
from repro.sim.config import SimConfig
from repro.sim.engine import EngineSpec, EventQueue, EventSnapshot, resolve_engine
from repro.sim.events.span import RETRY_STRIDE, SpanDriver
from repro.sim.hooks import HookBus
from repro.sim.metrics import SimMetrics, SimReport
from repro.sim.queues import QueueBank
from repro.sim.reorder import ReorderDetector
from repro.sim.source import (
    MaterializedSource,
    PacketSource,
    WorkloadChunk,
    concat_chunks,
    empty_chunk,
    workload_fingerprint,
)
from repro.sim.workload import Workload

__all__ = ["SimState", "SimKernel", "Checkpoint", "CHECKPOINT_VERSION"]

#: bump when the pickled state layout changes incompatibly.
#: v4: ``SimState.events`` is serialized as an engine-independent
#: :class:`~repro.sim.events.base.EventSnapshot`, so a run checkpointed
#: under one engine resumes bit-identically under another.
CHECKPOINT_VERSION = 4

#: local-index stride the arrival loop converts to plain Python lists
#: at a time — bounds resident unboxed columns to O(segment) for any
#: window size (a whole-window tolist would undo PR 4's memory bounds)
_SEGMENT = 65_536

#: segment stride while the span drain is live: every committed span
#: invalidates the unboxed segment, and the scalar stretches between
#: spans are short (a retry stride, a guard episode), so unboxing the
#: full 65k-row segment per stretch would cost more than the scalar
#: packets it feeds — spans with a drain active unbox small slices
_SPAN_SEGMENT = 4_096

#: ceiling for the exponential span-retry backoff: guard-heavy
#: schedulers in sustained overload settle at one (cheap, bailed)
#: attempt per ~16k arrivals instead of one per RETRY_STRIDE
_MAX_RETRY_STRIDE = 16_384

#: cap on how far ahead one assign_batch plan reaches; bounds both the
#: column's list size and the vector work wasted per epoch bump
_PLAN_SPAN = 65_536


# ----------------------------------------------------------------------
@dataclass
class SimState:
    """All live state of one simulation run, explicitly owned.

    Everything the run loop mutates lives here — nothing hides in
    closure locals or instance attributes of the kernel.  The whole
    object (together with the scheduler and injector sharing its
    references) pickles into a :class:`Checkpoint`.  Packet indices
    (``next_arrival``, ``core_current_pkt``, queue contents, heap
    completions) are *global* positions in the packet sequence, valid
    across window slides.
    """

    #: horizon up to which the run has advanced (``run_until`` bound)
    now_ns: int
    #: global index of the next workload arrival to dispatch
    next_arrival: int
    #: the drain phase has completed
    drained: bool
    core_busy: list[bool]
    core_last_service: list[int]
    core_speed: list[float]
    core_current_pkt: list[int]
    #: in-flight packets tombstoned by a core failure
    killed_pkts: set[int]
    #: last core each flow was served on (-1 = never) — a plain list,
    #: not an ndarray: the hot loop reads and writes one scalar per
    #: packet, where list indexing beats numpy scalar boxing ~4x
    flow_last_core: list[int]
    flow_migrated: np.ndarray
    queues: QueueBank
    events: EventQueue
    metrics: SimMetrics
    reorder: ReorderDetector
    departures: list[tuple[int, int, int]]
    drop_records: list[tuple[int, int, int]]
    #: arrival instant of the last dispatched packet (drain anchor —
    #: with a streamed source the final arrival time is not known up
    #: front, so the run loop records it as it dispatches)
    last_arrival_ns: int = 0

    @classmethod
    def initial(
        cls,
        config: SimConfig,
        source: PacketSource,
        events: EventQueue | None = None,
    ) -> "SimState":
        """Fresh pre-run state for *config* and *source*.  *events* is
        the engine-chosen queue implementation (heap default)."""
        n_cores = config.num_cores
        return cls(
            now_ns=0,
            next_arrival=0,
            drained=False,
            core_busy=[False] * n_cores,
            core_last_service=[-1] * n_cores,
            core_speed=[1.0] * n_cores,
            core_current_pkt=[-1] * n_cores,
            killed_pkts=set(),
            flow_last_core=[-1] * source.num_flows,
            flow_migrated=np.zeros(source.num_flows, dtype=bool),
            queues=QueueBank(config.num_cores, config.queue_capacity),
            events=events if events is not None else EventQueue(),
            metrics=SimMetrics(len(config.services), config.num_cores),
            reorder=ReorderDetector(),
            departures=[],
            drop_records=[],
        )


# ----------------------------------------------------------------------
def _config_fingerprint(config: SimConfig) -> str:
    svc = ",".join(
        f"{config.services[s].base_ns}+{config.services[s].per_64b_ns}"
        for s in range(len(config.services))
    )
    return (
        f"cores={config.num_cores};cap={config.queue_capacity};"
        f"fm={config.fm_penalty_ns};cc={config.cc_penalty_ns};"
        f"drain={config.drain_ns};lat={int(config.collect_latencies)};"
        f"dep={int(config.record_departures)};svc=[{svc}]"
    )


@dataclass(frozen=True)
class Checkpoint:
    """A paused run, serialized: resume it with :meth:`SimKernel.resume`.

    The ``blob`` pickles ``(SimState, scheduler, injector, extras)`` in
    one object graph — ``extras`` carries the streaming source cursor
    and live window for non-materialized sources (None otherwise);
    config and workload are validated by fingerprint at resume time
    rather than stored.  ``to_bytes``/``from_bytes`` give a file-ready
    wire form.
    """

    version: int
    time_ns: int
    blob: bytes
    config_fingerprint: str
    workload_fingerprint: str

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Checkpoint":
        obj = pickle.loads(raw)
        if not isinstance(obj, cls):
            raise SimulationError(
                f"not a simulation checkpoint: {type(obj).__name__}"
            )
        if obj.version != CHECKPOINT_VERSION:
            raise SimulationError(
                f"checkpoint version {obj.version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return obj


# ----------------------------------------------------------------------
def _no_timed_handler(event, t_ns):  # pragma: no cover - defensive
    raise SimulationError(
        f"timed event {event!r} at {t_ns} ns but no handler is subscribed"
    )


class SimKernel:
    """Steppable network-processor simulation over an explicit state.

    Lifecycle: construct (fresh state, scheduler bound and subscribed
    to the bus) → optionally :meth:`attach_probe` / :meth:`attach_injector`
    → any mix of :meth:`step` / :meth:`run_until` / :meth:`run` →
    :class:`~repro.sim.metrics.SimReport`.  :meth:`checkpoint` may be
    called between advances; :meth:`resume` restores one.

    *workload* may be a :class:`~repro.sim.workload.Workload` (wrapped
    in a whole-run :class:`~repro.sim.source.MaterializedSource`) or
    any :class:`~repro.sim.source.PacketSource`.  A source argument is
    cloned, so one source object can seed any number of kernels.

    The kernel itself satisfies the sampler view protocol (``queues``,
    ``metrics``, ``scheduler``, ``reorder``, ``injector`` attributes),
    so rich probes bind to it directly.
    """

    def __init__(
        self,
        config: SimConfig,
        scheduler: Scheduler,
        workload: Workload | PacketSource,
        *,
        bus: HookBus | None = None,
        vectorized: bool = True,
        engine: str | EngineSpec | None = None,
        state: SimState | None = None,
        _resumed: bool = False,
        _chunks: list[WorkloadChunk] | None = None,
        _exhausted: bool = False,
    ) -> None:
        if isinstance(workload, Workload):
            source = MaterializedSource(workload)
        elif isinstance(workload, PacketSource):
            source = workload if _resumed else workload.clone()
        else:
            raise ConfigError(
                f"workload must be a Workload or PacketSource, "
                f"got {type(workload).__name__}"
            )
        if source.num_services > len(config.services):
            raise ConfigError(
                f"workload uses {source.num_services} services but the "
                f"config defines only {len(config.services)}"
            )
        self.config = config
        self.scheduler = scheduler
        self.source = source
        self._chunks: deque[WorkloadChunk] = deque(_chunks) if _chunks else deque()
        self._exhausted = bool(_exhausted)
        #: live arrival window (consecutive un-retired chunks)
        self.window: WorkloadChunk = (
            concat_chunks(list(self._chunks)) if self._chunks else empty_chunk(0)
        )
        self.bus = bus if bus is not None else HookBus()
        #: resolved event-core engine (``repro.sim.engine`` registry)
        self.engine_spec = (
            engine if isinstance(engine, EngineSpec) else resolve_engine(engine)
        )
        self.state = (
            state
            if state is not None
            else SimState.initial(config, source, self.engine_spec.make_queue())
        )
        self.injector = None
        self._finished = False
        self._start_packet = None
        self._complete_until = None
        self._wl_fp: str | None = None
        #: the vectorized fast path is on iff requested and the
        #: scheduler actually overrides assign_batch (results are
        #: bit-identical either way — the flag exists for equivalence
        #: tests and scalar-baseline benchmarks, and deliberately does
        #: not enter the config fingerprint)
        self.vectorized = bool(vectorized)
        self._batch_on = self.vectorized and (
            type(scheduler).assign_batch is not Scheduler.assign_batch
        )
        # planned core_of column: local-index span [_col_lo, _col_hi)
        # of the current window, valid while the scheduler's map_epoch
        # equals _col_epoch.  Never checkpointed — replanning is
        # idempotent by the assign_batch contract.
        self._col: list[int] | None = None
        self._col_arr: np.ndarray | None = None
        self._col_lo = 0
        self._col_hi = 0
        self._col_epoch = -1
        self._col_plan_li = -1
        #: nominal service-time column for the live window (set by
        #: :meth:`_activate`, consumed by the span drain)
        self._nominal: np.ndarray | None = None
        #: batched span drain — only engines with a compute backend
        #: get one; the heap engine stays purely scalar (the oracle)
        self._span = (
            SpanDriver(self, self.engine_spec.span_backend)
            if self.engine_spec.span_backend is not None
            else None
        )
        #: cumulative wall-clock ns spent planning columns
        #: (:meth:`_plan_column`) — the "plan" leg of the span-drain
        #: phase breakdown in :attr:`span_stats`
        self.plan_ns = 0
        if not _resumed:
            # a restored scheduler is already bound to the restored
            # queue bank (shared pickle graph); re-binding would reset
            # its placement state
            scheduler.bind(self.state.queues)
        scheduler.register_hooks(self.bus)

    # -- sampler view protocol -----------------------------------------
    @property
    def queues(self) -> QueueBank:
        return self.state.queues

    @property
    def metrics(self) -> SimMetrics:
        return self.state.metrics

    @property
    def reorder(self) -> ReorderDetector:
        return self.state.reorder

    @property
    def events_popped(self) -> int:
        """Heap events popped so far (profiling signal)."""
        return self.state.events.popped

    @property
    def now_ns(self) -> int:
        return self.state.now_ns

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def arrivals_pending(self) -> bool:
        """An undispatched arrival exists (may pull a source chunk to
        find out — deterministic and idempotent)."""
        return self._peek_arrival_ns() is not None

    # -- hook attachment -----------------------------------------------
    def attach_probe(self, probe) -> None:
        """Register a periodic sampler on the bus.

        Accepts anything with ``maybe_sample(t_ns, queues, metrics)``
        (:class:`repro.sim.probes.QueueProbe`,
        :class:`repro.obs.TelemetryProbe`, ...).  A probe with a
        ``bind`` method is bound to the kernel so its samplers see the
        scheduler, reorder detector and injector too.
        """
        if probe is None:
            return
        if hasattr(probe, "bind"):
            probe.bind(self)
        queues = self.state.queues
        metrics = self.state.metrics
        maybe_sample = probe.maybe_sample

        def sample(t_ns: int) -> None:
            maybe_sample(t_ns, queues, metrics)

        self.bus.subscribe(
            "sample", sample, period_ns=getattr(probe, "period_ns", None)
        )

    def attach_injector(self, injector, *, resumed: bool = False) -> None:
        """Bind a :class:`repro.faults.FaultInjector` to this run.

        The injector validates its schedule against the config, pushes
        its timed events into the heap (skipped on resume — they are
        already in the restored heap) and subscribes to ``timed_event``.
        """
        if injector is None:
            return
        if self.injector is not None:
            raise SimulationError("a kernel takes at most one injector")
        self.injector = injector
        injector.bind(self, schedule_events=not resumed)
        self.bus.subscribe("timed_event", injector.apply)

    # -- the sliding arrival window ------------------------------------
    def _min_live_pkt(self) -> int:
        """Smallest global packet index the run can still touch: the
        next arrival, any packet in service, any queued packet (after a
        fault reassignment queue order is no longer index order, so the
        minimum is scanned, not peeked)."""
        st = self.state
        lo = st.next_arrival
        for pkt in st.core_current_pkt:
            if 0 <= pkt < lo:
                lo = pkt
        for q in st.queues:
            m = q.min_item()
            if m is not None and m < lo:
                lo = m
        return lo

    def _pull_chunk(self) -> bool:
        """Append the source's next chunk to the window (retiring fully
        dead leading chunks first); False when the source is exhausted.
        Invalidates the compiled hot loop — it binds the old arrays.
        """
        if self._exhausted:
            return False
        chunk = self.source.next_chunk()
        if chunk is None:
            self._exhausted = True
            return False
        chunks = self._chunks
        retired = False
        if chunks:
            lo = self._min_live_pkt()
            while chunks and chunks[0].end <= lo:
                chunks.popleft()
                retired = True
        win = self.window
        chunks.append(chunk)
        if not retired and len(win) and win.base == chunks[0].base:
            # nothing retired: extend the standing window with the one
            # new chunk instead of re-concatenating every live chunk
            self.window = concat_chunks([win, chunk])
        else:
            self.window = concat_chunks(list(chunks))
        self._start_packet = None
        self._complete_until = None
        self._nominal = None
        self._col = None
        self._col_arr = None
        self._col_lo = self._col_hi = 0
        self._col_epoch = -1
        self._col_plan_li = -1
        return True

    def _plan_column(self, li: int) -> None:
        """(Re)compute the planned ``core_of`` column for the window
        suffix starting at local index *li*, under the scheduler's
        current tables; stamps the column with the post-plan
        ``map_epoch`` (planning itself must not self-invalidate)."""
        t0 = time.perf_counter_ns()
        sched = self.scheduler
        win = self.window
        hi = len(win)
        if hi > li + _PLAN_SPAN:
            hi = li + _PLAN_SPAN
        out = sched.assign_batch(
            win.flow_hash[li:hi],
            win.service_id[li:hi],
            win.flow_id[li:hi],
            win.arrival_ns[li:hi],
            win.base + li,
        )
        if out is None:
            self._col = []
            self._col_arr = None
            self._col_hi = li
        else:
            self._col = out.tolist()
            # the span drain consumes the un-unboxed array directly
            self._col_arr = out
            self._col_hi = li + len(self._col)
        self._col_lo = li
        self._col_plan_li = li
        self._col_epoch = sched.map_epoch
        self.plan_ns += time.perf_counter_ns() - t0

    def _peek_arrival_ns(self) -> int | None:
        """Arrival time of the next undispatched packet, pulling chunks
        as needed; None when the source has no packets left."""
        st = self.state
        while True:
            win = self.window
            if st.next_arrival - win.base < len(win):
                return int(win.arrival_ns[st.next_arrival - win.base])
            if not self._pull_chunk():
                return None

    # -- activation: compile the hot loop ------------------------------
    def _activate(self) -> None:
        """Compile ``start_packet`` / ``complete_until`` over the state
        and the current window.

        Closures capture the state *containers* (mutated in place), so
        the per-packet path touches only locals — the original loop's
        no-attribute-lookup property; packet columns are indexed at
        ``pkt - base`` within the window.  Re-run after :meth:`resume`
        or a window slide to re-close over the current containers.
        """
        self.bus.freeze()
        cfg = self.config
        st = self.state
        win = self.window
        services = cfg.services
        base_ns = [services[s].base_ns for s in range(len(services))]
        per64_ns = [services[s].per_64b_ns for s in range(len(services))]
        fm_pen = cfg.fm_penalty_ns
        cc_pen = cfg.cc_penalty_ns
        core_busy = st.core_busy
        core_last_service = st.core_last_service
        core_speed = st.core_speed
        core_current_pkt = st.core_current_pkt
        killed_pkts = st.killed_pkts
        flow_last_core = st.flow_last_core
        flow_migrated = st.flow_migrated
        queues = st.queues
        events = st.events
        metrics = st.metrics
        reorder = st.reorder
        base = win.base
        # bound-method element accessors: ``arr.item(i)`` unboxes a
        # numpy scalar to a Python int noticeably cheaper than
        # ``int(arr[i])`` on the random-access paths below
        arr_item = win.arrival_ns.item
        svc_item = win.service_id.item
        flow_item = win.flow_id.item
        seq_item = win.seq.item
        # nominal per-packet service time (eq. 3 without penalties),
        # vectorized once per window: base_ns[sid] + round(p64*size/64).
        # p64*size is exact in int64 and /64.0 is an exact float scale,
        # so np.rint matches Python round() bit-for-bit.  Kept as an
        # int64 array (not a list) so resident size stays O(window)
        # bytes, matching the other window columns.
        if len(win):
            sids = win.service_id
            nominal = np.asarray(base_ns, dtype=np.int64)[sids] + np.rint(
                np.asarray(per64_ns, dtype=np.float64)[sids]
                * win.size_bytes.astype(np.float64)
                / 64.0
            ).astype(np.int64)
        else:
            nominal = np.empty(0, dtype=np.int64)
        self._nominal = nominal  # consumed by the span drain
        proc_item = nominal.item
        collect_lat = cfg.collect_latencies
        latencies = metrics.latencies_ns
        record_dep = cfg.record_departures
        departures = st.departures
        on_queue_empty = self.bus.dispatcher("queue_empty")
        dispatch_timed = self.bus.dispatcher("timed_event") or _no_timed_handler
        on_depart = reorder.on_depart
        busy_ns = metrics.busy_ns_per_core
        # per-core FIFO deques, hoisted past QueueBank.__getitem__ and
        # BoundedQueue.take/is_empty (the deques are mutated in place
        # for a bank's whole lifetime, so the bindings stay valid)
        q_items = [q._items for q in queues]

        if isinstance(events, EventQueue):
            # heap engine: the closures inline heappush/heappop on the
            # raw heap list with the queue's bookkeeping batched in
            # locals — the scalar performance floor
            heap = events.heap

            def start_packet(core: int, pkt: int, t_ns: int) -> None:
                """Begin service of packet *pkt* (global index) on *core*."""
                li = pkt - base
                sid = svc_item(li)
                fid = flow_item(li)
                t_proc = proc_item(li)
                last = flow_last_core[fid]
                if last >= 0 and last != core:
                    t_proc += fm_pen
                    metrics.flow_migration_events += 1
                    flow_migrated[fid] = True
                flow_last_core[fid] = core
                if core_last_service[core] != sid:
                    if core_last_service[core] >= 0:
                        t_proc += cc_pen
                        metrics.cold_cache_events += 1
                    core_last_service[core] = sid
                speed = core_speed[core]
                if speed != 1.0:  # degraded core (repro.faults CoreSlowdown)
                    t_proc = int(round(t_proc * speed))
                core_busy[core] = True
                core_current_pkt[core] = pkt
                busy_ns[core] += t_proc
                # inlined events.push: completions are scheduled at
                # t_ns + t_proc >= t_ns >= the last pop, so the causality
                # check is vacuous here (the validated push remains on the
                # injector path)
                s = events._seq
                heappush(heap, (t_ns + t_proc, s, (core, pkt)))
                events._seq = s + 1

            def complete_until(horizon_ns: int) -> None:
                """Drain heap events with time <= horizon in time order.

                Pops are inlined (heappop on the raw heap) with the queue's
                popped/now bookkeeping — and the departed/last-depart
                metrics — batched in locals; both batches are flushed
                before any timed-event or queue-empty dispatch, so handlers
                that push events or read counters see exact state, and at
                exit, before probes sample.
                """
                n_popped = 0
                n_departed = 0
                t_done = -1
                t_dep = -1
                while heap and heap[0][0] <= horizon_ns:
                    t_done, _, payload = heappop(heap)
                    n_popped += 1
                    core, pkt = payload
                    if core < 0:  # timed platform event, not a completion
                        events.flush_pops(n_popped, t_done)
                        n_popped = 0
                        if n_departed:
                            metrics.departed += n_departed
                            metrics.last_depart_ns = t_dep
                            n_departed = 0
                        dispatch_timed(pkt, t_done)
                        continue
                    if killed_pkts and pkt in killed_pkts:
                        killed_pkts.discard(pkt)  # died with its core
                        continue
                    li = pkt - base
                    n_departed += 1
                    t_dep = t_done  # pops are time-ordered
                    on_depart(flow_item(li), seq_item(li))
                    if collect_lat:
                        latencies.append(t_done - arr_item(li))
                    if record_dep:
                        departures.append((flow_item(li), seq_item(li), t_done))
                    qi = q_items[core]
                    if qi:
                        start_packet(core, qi.popleft(), t_done)
                    else:
                        core_busy[core] = False
                        core_current_pkt[core] = -1
                        if on_queue_empty is not None:
                            events.flush_pops(n_popped, t_done)
                            n_popped = 0
                            if n_departed:
                                metrics.departed += n_departed
                                metrics.last_depart_ns = t_dep
                                n_departed = 0
                            on_queue_empty(core, t_done)
                if n_popped:
                    events.flush_pops(n_popped, t_done)
                if n_departed:
                    metrics.departed += n_departed
                    metrics.last_depart_ns = t_dep

        else:
            # calendar engines: the pending structure is opaque, so the
            # closures go through the queue's methods with the cheap
            # ``next_ref`` peek cell standing in for ``heap[0][0]``.
            # pop() carries its own popped/now bookkeeping, so only the
            # departed-metrics batch needs flushing around dispatches.
            # The scalar path matters less here: the span drain in
            # repro.sim.events.span bypasses these closures for eligible
            # arrival runs.
            ev_push = events.push
            ev_pop = events.pop
            ev_next = events.next_ref

            def start_packet(core: int, pkt: int, t_ns: int) -> None:
                """Begin service of packet *pkt* (global index) on *core*."""
                li = pkt - base
                sid = svc_item(li)
                fid = flow_item(li)
                t_proc = proc_item(li)
                last = flow_last_core[fid]
                if last >= 0 and last != core:
                    t_proc += fm_pen
                    metrics.flow_migration_events += 1
                    flow_migrated[fid] = True
                flow_last_core[fid] = core
                if core_last_service[core] != sid:
                    if core_last_service[core] >= 0:
                        t_proc += cc_pen
                        metrics.cold_cache_events += 1
                    core_last_service[core] = sid
                speed = core_speed[core]
                if speed != 1.0:  # degraded core (repro.faults CoreSlowdown)
                    t_proc = int(round(t_proc * speed))
                core_busy[core] = True
                core_current_pkt[core] = pkt
                busy_ns[core] += t_proc
                ev_push(t_ns + t_proc, (core, pkt))

            def complete_until(horizon_ns: int) -> None:
                """Drain pending events with time <= horizon in order.

                The departed/last-depart metrics are batched in locals
                and flushed before any timed-event or queue-empty
                dispatch and at exit, exactly as the heap closure does.
                """
                n_departed = 0
                t_dep = -1
                while ev_next[0] <= horizon_ns:
                    t_done, payload = ev_pop()
                    core, pkt = payload
                    if core < 0:  # timed platform event, not a completion
                        if n_departed:
                            metrics.departed += n_departed
                            metrics.last_depart_ns = t_dep
                            n_departed = 0
                        dispatch_timed(pkt, t_done)
                        continue
                    if killed_pkts and pkt in killed_pkts:
                        killed_pkts.discard(pkt)  # died with its core
                        continue
                    li = pkt - base
                    n_departed += 1
                    t_dep = t_done  # pops are time-ordered
                    on_depart(flow_item(li), seq_item(li))
                    if collect_lat:
                        latencies.append(t_done - arr_item(li))
                    if record_dep:
                        departures.append((flow_item(li), seq_item(li), t_done))
                    qi = q_items[core]
                    if qi:
                        start_packet(core, qi.popleft(), t_done)
                    else:
                        core_busy[core] = False
                        core_current_pkt[core] = -1
                        if on_queue_empty is not None:
                            if n_departed:
                                metrics.departed += n_departed
                                metrics.last_depart_ns = t_dep
                                n_departed = 0
                            on_queue_empty(core, t_done)
                if n_departed:
                    metrics.departed += n_departed
                    metrics.last_depart_ns = t_dep

        self._start_packet = start_packet
        self._complete_until = complete_until

    @property
    def active(self) -> bool:
        """The hot loop is compiled for the current window."""
        return self._start_packet is not None

    @property
    def span_stats(self) -> dict[str, int]:
        """Batched-drain counters (all zero on the scalar heap engine):
        spans committed, attempts bailed to the scalar path, packets
        dispatched through committed spans, and the wall-clock phase
        split — ``plan_ns`` (column planning, accumulated on every
        engine), ``drain_ns`` (phase-1 per-core simulation) and
        ``commit_ns`` (phase-2 state commit including the scheduler's
        span commit)."""
        s = self._span
        if s is None:
            return {
                "spans_committed": 0,
                "spans_bailed": 0,
                "packets_spanned": 0,
                "plan_ns": self.plan_ns,
                "drain_ns": 0,
                "commit_ns": 0,
            }
        return {
            "spans_committed": s.spans_committed,
            "spans_bailed": s.spans_bailed,
            "packets_spanned": s.packets_spanned,
            "plan_ns": self.plan_ns,
            "drain_ns": s.drain_ns,
            "commit_ns": s.commit_ns,
        }

    def start_packet(self, core: int, pkt: int, t_ns: int) -> None:
        """Begin service of *pkt* on *core* (injector reassignment path)."""
        if self._start_packet is None:
            self._activate()
        self._start_packet(core, pkt, t_ns)

    # -- advancing the run ---------------------------------------------
    def run_until(self, t_ns: int) -> None:
        """Advance the run to *t_ns*.

        Dispatches every arrival with ``arrival_ns <= t_ns`` — each
        preceded by the completions and timed events due by then, in
        strict time order, pulling source chunks as the window runs out
        — then drains remaining heap events up to *t_ns*.  Splitting a
        run across any sequence of horizons yields state (and
        ultimately a report) identical to one uninterrupted
        :meth:`run`.
        """
        if self._finished:
            raise SimulationError("kernel already finished")
        st = self.state
        if t_ns < st.now_ns:
            raise SimulationError(
                f"run_until({t_ns}) is behind current time {st.now_ns}"
            )
        cfg = self.config
        sched = self.scheduler
        n_cores = cfg.num_cores
        cap = cfg.queue_capacity
        record_dep = cfg.record_departures
        metrics = st.metrics
        queues = st.queues
        reorder = st.reorder
        core_busy = st.core_busy
        drop_records = st.drop_records
        gen_per_service = metrics.generated_per_service
        drop_per_service = metrics.dropped_per_service
        qs = [queues[c] for c in range(n_cores)]
        if isinstance(st.events, EventQueue):
            # mutated in place; identity is stable
            ev_heap = st.events.heap
            ev_next = [1 << 62]  # never due: the heap peek is authoritative
        else:
            ev_heap = ()  # never truthy: the next_ref peek is authoritative
            ev_next = st.events.next_ref
        batch_on = self._batch_on
        span = self._span if batch_on else None
        sel = sched.select_core
        guard = sched.batch_guard
        commit = sched.batch_commit
        while True:
            if self._start_packet is None:
                self._activate()
            complete_until = self._complete_until
            start_packet = self._start_packet
            sample = self.bus.dispatcher("sample")
            on_queue_busy = self.bus.dispatcher("queue_busy")
            win = self.window
            base = win.base
            arrival = win.arrival_ns
            seq = win.seq
            n_local = arrival.shape[0]
            li = li0 = st.next_arrival - base
            # next local index at which to attempt a batched span drain
            # (-1 disables).  A bailed attempt costs a full interpreted
            # phase 1, so repeated bails back the retry distance off
            # exponentially; the first win snaps it back to RETRY_STRIDE.
            span_li = li if span is not None else -1
            span_stride = RETRY_STRIDE
            # column-plan locals mirror the kernel attrs; they diverge
            # only through _plan_column, which updates both
            col = self._col
            cl = self._col_lo
            ch = self._col_hi
            col_epoch = self._col_epoch
            plan_li = self._col_plan_li
            # arrival columns are unboxed to plain lists one bounded
            # segment at a time: list indexing beats per-packet numpy
            # scalar conversion several times over
            seg_lo = 0
            seg_hi = li  # force a segment load on the first iteration
            arr_seg = svc_seg = flow_seg = hash_seg = ()
            try:
                while li < n_local:
                    if li == span_li:
                        li2 = span.attempt(li, t_ns)
                        # the attempt replans/consumes the column plan:
                        # resync the mirrored locals unconditionally
                        col = self._col
                        cl = self._col_lo
                        ch = self._col_hi
                        col_epoch = self._col_epoch
                        plan_li = self._col_plan_li
                        if li2 > li:
                            li = li2
                            seg_hi = li  # stale: force a segment reload
                            span_li = li  # a win: try to continue batched
                            span_stride = RETRY_STRIDE
                            continue
                        span_li = li + span_stride
                        if span_stride < _MAX_RETRY_STRIDE:
                            span_stride *= 2
                    if li >= seg_hi:
                        seg_lo = li
                        seg_hi = li + (_SEGMENT if span is None else _SPAN_SEGMENT)
                        if seg_hi > n_local:
                            seg_hi = n_local
                        arr_seg = arrival[seg_lo:seg_hi].tolist()
                        svc_seg = win.service_id[seg_lo:seg_hi].tolist()
                        flow_seg = win.flow_id[seg_lo:seg_hi].tolist()
                        hash_seg = win.flow_hash[seg_lo:seg_hi].tolist()
                    k = li - seg_lo
                    t = arr_seg[k]
                    if t > t_ns:
                        break
                    if ev_heap:
                        if ev_heap[0][0] <= t:
                            complete_until(t)
                    elif ev_next[0] <= t:
                        complete_until(t)
                    if sample is not None:
                        sample(t)
                    metrics.generated += 1
                    sid = svc_seg[k]
                    gen_per_service[sid] += 1
                    if batch_on:
                        # any table mutation since the plan — by the
                        # completions/timed events just drained, or by a
                        # previous packet's scalar fallback — bumped the
                        # epoch: replan the remaining suffix.  Also
                        # replan on walking off a non-empty span.
                        if sched.map_epoch != col_epoch or (
                            li >= ch and li > plan_li
                        ):
                            self._plan_column(li)
                            col = self._col
                            cl = self._col_lo
                            ch = self._col_hi
                            col_epoch = self._col_epoch
                            plan_li = self._col_plan_li
                        if cl <= li < ch:
                            core = col[li - cl]
                            if core < 0:
                                # sentinel: this packet needs the
                                # scalar path (e.g. stale pin pruning)
                                core = sel(flow_seg[k], sid, hash_seg[k], t)
                            elif guard is not None:
                                q = qs[core]
                                occ = cap if q.down else len(q)
                                if occ >= guard:
                                    # overloaded target: the planned
                                    # entry is invalid, run the real
                                    # balancer
                                    core = sel(flow_seg[k], sid, hash_seg[k], t)
                                elif commit is not None:
                                    commit(flow_seg[k], hash_seg[k], core, occ, t)
                            elif commit is not None:
                                commit(flow_seg[k], hash_seg[k], core, -1, t)
                        else:
                            core = sel(flow_seg[k], sid, hash_seg[k], t)
                    else:
                        core = sel(flow_seg[k], sid, hash_seg[k], t)
                    if not 0 <= core < n_cores:
                        raise SimulationError(
                            f"{sched.name} returned core {core} of {n_cores}"
                        )
                    if core_busy[core]:
                        q = qs[core]
                        if q.is_empty and on_queue_busy is not None:
                            on_queue_busy(core, t)
                        if not q.offer(base + li):
                            metrics.dropped += 1
                            drop_per_service[sid] += 1
                            if q.down:  # black-holed: the target core is dead
                                metrics.fault_dropped += 1
                            reorder.on_drop(flow_seg[k], seq.item(li))
                            if record_dep:
                                drop_records.append((flow_seg[k], seq.item(li), t))
                    else:
                        if on_queue_busy is not None:
                            on_queue_busy(core, t)
                        start_packet(core, base + li, t)
                    li += 1
            finally:
                st.next_arrival = base + li
                if li > li0:
                    st.last_arrival_ns = int(arrival[li - 1])
            if li < n_local:
                break  # the next arrival is beyond the horizon
            # release the compiled closures and unboxed segments before
            # sliding: they bind the old window's arrays (and its
            # service-time column), and holding them across the pull
            # would double the resident window at the peak
            complete_until = start_packet = None
            arr_seg = svc_seg = flow_seg = hash_seg = ()
            if not self._pull_chunk():
                break  # source exhausted: every arrival dispatched
        if self._complete_until is None:  # pragma: no cover - defensive
            self._activate()
        self._complete_until(t_ns)
        st.now_ns = t_ns

    def next_event_ns(self) -> int | None:
        """Time of the next pending instant (arrival or heap event),
        or None when nothing is left.  May pull a source chunk to see
        the next arrival (deterministic and idempotent)."""
        nxt = self.state.events.peek_time()
        t_arr = self._peek_arrival_ns()
        if t_arr is not None:
            nxt = t_arr if nxt is None else min(nxt, t_arr)
        return nxt

    def step(self) -> int | None:
        """Advance to the next event instant and process everything due
        at it; returns that time, or None when the run is quiescent.

        Note: unbounded stepping runs past the drain bound the full
        :meth:`run` would stop at — clamp against
        ``last_arrival + config.drain_ns`` to reproduce ``run()``'s
        abandonment of late in-flight packets.
        """
        nxt = self.next_event_ns()
        if nxt is None:
            return None
        self.run_until(nxt)
        return nxt

    # -- drain + report -------------------------------------------------
    def _drain(self) -> None:
        """Serve queued work after the last arrival (bounded).

        With a periodic ``sample`` hook the drain advances one sample
        period at a time so time series keep covering departures after
        the last arrival; an empty heap means nothing is in flight (a
        non-empty queue implies a busy core, which implies a pending
        completion), so further boundaries would only repeat a frozen
        state.
        """
        if self._complete_until is None:
            self._activate()
        cfg = self.config
        st = self.state
        events = st.events
        complete_until = self._complete_until
        sample = self.bus.dispatcher("sample")
        last_arrival_ns = st.last_arrival_ns
        drain_end = last_arrival_ns + cfg.drain_ns
        if sample is not None and cfg.drain_ns > 0:
            step = self.bus.sample_period_ns or cfg.drain_ns
            t = last_arrival_ns + step
            while t <= st.now_ns:  # resumed mid-drain: catch up first
                t += step
            # stop early when the next heap event is past the drain
            # bound: nothing can change before drain_end
            while t < drain_end and events:
                nxt = events.peek_time()
                if nxt is not None and nxt > drain_end:
                    break
                complete_until(t)
                sample(t)
                t += step
        if drain_end > st.now_ns:
            complete_until(drain_end)
            st.now_ns = drain_end
        if sample is not None:
            sample(max(drain_end, st.now_ns))
        st.drained = True
        # anything still in flight past the drain bound is abandoned
        # unscored (counted as neither departed nor dropped)

    def run_arrivals(self) -> int:
        """Advance through every remaining arrival (no drain).

        Returns the last arrival instant dispatched so far — the
        sharded coordinator gathers these across shards to agree on the
        *global* last arrival before anyone drains (see :meth:`finish`).
        """
        if self._finished:
            raise SimulationError("kernel already finished")
        st = self.state
        while self._peek_arrival_ns() is not None:
            # the peek pulled the window forward; run to its last
            # arrival (run_until keeps pulling if equal-time arrivals
            # straddle the chunk boundary)
            horizon = int(self.window.arrival_ns[-1])
            self.run_until(max(horizon, st.now_ns))
        return st.last_arrival_ns

    def finish(self, last_arrival_ns: int | None = None) -> SimReport:
        """Drain and finalize (arrivals must be exhausted by the caller).

        *last_arrival_ns* overrides the drain horizon's anchor when it
        is later than this kernel's own last arrival: a shard of a
        partitioned run stops receiving packets before the full system
        does, but must keep draining until ``global_last + drain_ns``
        so its departures are scored over the same window a
        single-process run would use.
        """
        st = self.state
        if last_arrival_ns is not None and int(last_arrival_ns) > st.last_arrival_ns:
            st.last_arrival_ns = int(last_arrival_ns)
        self._drain()
        return self.finalize()

    def run(self) -> SimReport:
        """Advance to completion (arrivals, then drain) and report.

        Continues from wherever previous ``step``/``run_until`` calls —
        or a restored checkpoint — left the state.  Advances one window
        at a time, so a streamed source never materializes beyond the
        live chunks.
        """
        self.run_arrivals()
        return self.finish()

    def finalize(self) -> SimReport:
        """Freeze the metrics into the immutable report (once)."""
        if self._finished:
            raise SimulationError("kernel already finished")
        self._finished = True
        st = self.state
        return st.metrics.finalize(
            duration_ns=self.source.duration_ns,
            out_of_order=st.reorder.out_of_order,
            scheduler_name=self.scheduler.name,
            scheduler_stats=self.scheduler.stats(),
            migrated_flows=int(st.flow_migrated.sum()),
            departures=tuple(st.departures),
            drop_records=tuple(st.drop_records),
        )

    # -- checkpoint / resume --------------------------------------------
    def _workload_fp(self) -> str:
        if self._wl_fp is None:
            self._wl_fp = self.source.fingerprint()
        return self._wl_fp

    def checkpoint(self) -> Checkpoint:
        """Serialize the paused run (between advances) for later resume.

        Probes are *not* captured — re-attach fresh ones at resume; the
        time series restarts but the simulation outcome is unaffected
        (sampling never mutates run state).  A non-materialized source
        contributes its cursor and the live window chunks, so resuming
        against a same-spec source continues generation mid-chunk with
        no replay.
        """
        if self._finished:
            raise SimulationError("cannot checkpoint a finished run")
        extras = None
        if not isinstance(self.source, MaterializedSource):
            extras = {
                "source_cls": type(self.source).__qualname__,
                "snapshot": self.source.snapshot(),
                "chunks": list(self._chunks),
                "exhausted": self._exhausted,
            }
        st = self.state
        payload = (st, self.scheduler, self.injector, extras)
        # v4: the blob stores the engine-independent EventSnapshot, not
        # the live queue, so any engine can resume any checkpoint
        live_events = st.events
        st.events = live_events.snapshot()
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SimulationError(
                f"run state is not serializable: {exc}"
            ) from exc
        finally:
            st.events = live_events
        return Checkpoint(
            version=CHECKPOINT_VERSION,
            time_ns=self.state.now_ns,
            blob=blob,
            config_fingerprint=_config_fingerprint(self.config),
            workload_fingerprint=self._workload_fp(),
        )

    @classmethod
    def resume(
        cls,
        checkpoint: Checkpoint,
        config: SimConfig,
        workload: Workload | PacketSource,
        *,
        probe=None,
        bus: HookBus | None = None,
        vectorized: bool = True,
        engine: str | None = None,
    ) -> "SimKernel":
        """Rebuild a kernel from *checkpoint* and continue the run.

        *vectorized* need not match the checkpointing kernel's setting:
        planned columns are never serialized and every scheduler's
        batch bookkeeping is committed per dispatched packet, so either
        mode resumes to the same report.

        *engine* need not match either: the v4 blob stores the event
        set in its engine-independent snapshot form, so a run
        checkpointed under one engine resumes bit-identically under
        another (cross-engine both ways; pinned by
        ``tests/sim/test_engine_parity.py``).

        *config* and *workload* must describe the packet sequence the
        checkpointed run used (validated by fingerprint — materialized
        and streamed builds of the same spec share it, so a streamed
        checkpoint resumes against a materialized workload and vice
        versa).  When *workload* is a source of the same class the
        checkpoint's cursor snapshot restores it mid-stream; otherwise
        the window is rebuilt by pulling (and immediately retiring)
        chunks up to the saved position.  The scheduler and injector
        come back from the checkpoint with their state intact.
        """
        if checkpoint.version != CHECKPOINT_VERSION:
            raise SimulationError(
                f"checkpoint version {checkpoint.version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if _config_fingerprint(config) != checkpoint.config_fingerprint:
            raise SimulationError(
                "checkpoint was taken under a different SimConfig"
            )
        if workload_fingerprint(workload) != checkpoint.workload_fingerprint:
            raise SimulationError(
                "checkpoint was taken against a different workload"
            )
        state, scheduler, injector, extras = pickle.loads(checkpoint.blob)
        spec = resolve_engine(engine)
        if isinstance(state.events, EventSnapshot):
            state.events = spec.queue_cls.from_snapshot(state.events)
        chunks = None
        exhausted = False
        source_arg = workload
        if isinstance(workload, PacketSource):
            source_arg = workload.clone()
            if (
                extras is not None
                and type(workload).__qualname__ == extras["source_cls"]
            ):
                source_arg.restore(extras["snapshot"])
                chunks = extras["chunks"]
                exhausted = extras["exhausted"]
        kernel = cls(
            config, scheduler, source_arg, bus=bus, state=state,
            vectorized=vectorized, engine=spec, _resumed=True,
            _chunks=chunks, _exhausted=exhausted,
        )
        if injector is not None:
            kernel.attach_injector(injector, resumed=True)
        if probe is not None:
            kernel.attach_probe(probe)
        return kernel
