"""The network-processor simulator (Fig. 6 wired together).

Since the kernel refactor this module is a thin, stable shell: the run
loop itself lives in :class:`repro.sim.kernel.SimKernel`, which owns an
explicit :class:`~repro.sim.kernel.SimState` and exposes ``step()`` /
``run_until(t_ns)`` / ``run()`` plus checkpoint/resume.  Probes, fault
injectors and scheduler queue-edge callbacks all register on the
kernel's :class:`~repro.sim.hooks.HookBus` — the old
``probe.bind(sim)`` / ``injector.bind(sim)`` attribute-poking protocol
is gone.  See ``docs/architecture.md`` for the layering.

Event structure (unchanged): arrivals come pre-sorted from the
:class:`~repro.sim.workload.Workload` arrays or, chunk by chunk, from a
:class:`~repro.sim.source.PacketSource` (both are accepted wherever a
workload is; a source keeps resident memory at O(chunk)); the only
heap-managed events are core completions and the fault injector's timed
platform events.  Per arriving packet the kernel drains completions up to the
arrival instant, asks the scheduler for a target core, enqueues there
(or drops when the 32-descriptor queue is full), and an idle core
starts the packet immediately with the eq. 3 processing delay
(``T_proc`` + flow-migration/cold-cache penalties).  After the last
arrival the run drains for ``config.drain_ns`` so queued packets depart
and get scored for reordering.

The hot loop indexes plain numpy-backed lists and dicts; per-packet
Python objects are never created.

:class:`NetworkProcessorSim` remains the one-shot convenience wrapper
(construct with optional probe/injector, call :meth:`run` once); use
:class:`~repro.sim.kernel.SimKernel` directly for stepping, pausing and
checkpointing.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.schedulers.base import Scheduler
from repro.sim.config import SimConfig
from repro.sim.kernel import SimKernel
from repro.sim.metrics import SimReport
from repro.sim.source import PacketSource
from repro.sim.workload import Workload

__all__ = ["NetworkProcessorSim", "simulate"]


class NetworkProcessorSim:
    """One simulation run binding a scheduler to a workload.

    A convenience shell over :class:`~repro.sim.kernel.SimKernel`: the
    constructor wires the optional probe and injector onto the kernel's
    hook bus, and :meth:`run` executes the whole run exactly once.
    *workload* may be a materialized :class:`Workload` or any
    :class:`~repro.sim.source.PacketSource` (sources are cloned by the
    kernel, so one source object can seed many runs).
    """

    def __init__(
        self,
        config: SimConfig,
        scheduler: Scheduler,
        workload: Workload | PacketSource,
        probe=None,
        injector=None,
        *,
        vectorized: bool = True,
        engine: str | None = None,
    ) -> None:
        self.kernel = SimKernel(
            config, scheduler, workload, vectorized=vectorized, engine=engine
        )
        self.config = config
        self.scheduler = scheduler
        self.workload = workload
        #: optional periodic sampler (see :meth:`SimKernel.attach_probe`)
        self.probe = probe
        #: optional :class:`repro.faults.FaultInjector` (dynamic events)
        self.injector = injector
        if injector is not None:
            self.kernel.attach_injector(injector)
        if probe is not None:
            self.kernel.attach_probe(probe)
        self._ran = False

    # live-state views (delegate to the kernel's explicit state) --------
    @property
    def queues(self):
        return self.kernel.state.queues

    @property
    def metrics(self):
        return self.kernel.state.metrics

    @property
    def reorder(self):
        return self.kernel.state.reorder

    @property
    def events_popped(self) -> int:
        """Heap events popped by the run (profiling signal)."""
        return self.kernel.events_popped

    # ------------------------------------------------------------------
    def run(self) -> SimReport:
        """Execute the full run and return the report."""
        if self._ran:
            raise SimulationError("a NetworkProcessorSim instance runs once")
        self._ran = True
        return self.kernel.run()


def simulate(
    workload: Workload | PacketSource,
    scheduler: Scheduler,
    config: SimConfig | None = None,
    probe=None,
    injector=None,
    *,
    vectorized: bool = True,
    engine: str | None = None,
    shards: int | None = None,
    shard_workers: int = 0,
    shard_window_ns: int | None = None,
) -> SimReport:
    """Convenience one-shot: run *scheduler* on *workload* (a
    materialized :class:`Workload` or a streaming
    :class:`~repro.sim.source.PacketSource`).

    ``vectorized=False`` forces the per-packet scalar scheduling path;
    the report is bit-identical either way (the equivalence suite pins
    this), so the flag only matters for benchmarking both paths.
    *engine* picks the event core (see
    :func:`repro.sim.engine.resolve_engine`); reports are bit-identical
    across engines too — the engines trade speed, never outcomes.

    ``shards`` ≥ 2 delegates to :func:`repro.sim.sharding.run_sharded`:
    the system is partitioned and run over ``shard_workers`` processes
    (0 = auto), merging per-shard reports exactly — bit-identical for
    static-map schedulers, deterministic in (seed, window, shards) for
    LAPS.  Matching single-process semantics, only the injector's
    *platform* events ride along (traffic events are always the
    caller's job — apply them to the workload first).  Telemetry probes
    sample global state and are not supported sharded.
    """
    if shards is not None and shards > 1:
        if probe is not None:
            raise SimulationError(
                "telemetry probes sample global simulator state and are "
                "not supported on sharded runs — run single-process, or "
                "drop the probe"
            )
        from repro.faults.events import FaultSchedule
        from repro.sim.sharding import run_sharded

        schedule = None
        drain_policy = "drop"
        if injector is not None:
            platform = [
                ev for ev in injector.schedule.events if ev.kind == "platform"
            ]
            schedule = FaultSchedule(platform) if platform else None
            drain_policy = injector.drain_policy
        return run_sharded(
            workload, scheduler, config,
            shards=shards, workers=shard_workers,
            window_ns=shard_window_ns, schedule=schedule,
            drain_policy=drain_policy, engine=engine,
            vectorized=vectorized,
        ).report
    return NetworkProcessorSim(
        config or SimConfig(), scheduler, workload, probe=probe,
        injector=injector, vectorized=vectorized, engine=engine,
    ).run()
