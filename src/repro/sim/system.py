"""The network-processor simulator (Fig. 6 wired together).

Event structure: arrivals come pre-sorted in the
:class:`~repro.sim.workload.Workload` arrays; the only heap-managed
events are core completions.  Per arriving packet:

1. drain all completions up to the arrival instant (cores pull their
   next queued packet; queues that empty fire the scheduler's idle
   notification);
2. ask the scheduler for a target core;
3. enqueue there — or drop if the 32-descriptor queue is full;
4. an idle core starts the packet immediately; the processing delay is
   ``T_proc + FM/CC penalties`` (eq. 3) where the FM (flow-migration)
   penalty applies when the flow's previous packet ran on a different
   core and the CC (cold-cache) penalty when the core's previous packet
   belonged to a different service.

After the last arrival the simulator drains for ``config.drain_ns`` so
queued packets depart and get scored for reordering.

Dynamic platform events (core failure/recovery/slowdown — see
:mod:`repro.faults`) ride the same completion heap: a
:class:`~repro.faults.FaultInjector` pushes its timed events as
``(core=-1, event)`` payloads at bind time, and ``complete_until``
dispatches them back to the injector in strict time order, interleaved
with completions.  The injector mutates the live core state the run
loop exposes on the instance (``core_busy``, ``core_speed``,
``core_current_pkt``, the queue bank's down marks) and may kill the
in-flight packet of a failing core by putting it in ``killed_pkts``.

The hot loop indexes plain numpy-backed lists and dicts; per-packet
Python objects are never created.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.schedulers.base import Scheduler
from repro.sim.config import SimConfig
from repro.sim.engine import EventQueue
from repro.sim.metrics import SimMetrics, SimReport
from repro.sim.queues import QueueBank
from repro.sim.reorder import ReorderDetector
from repro.sim.workload import Workload

__all__ = ["NetworkProcessorSim", "simulate"]


class NetworkProcessorSim:
    """One simulation run binding a scheduler to a workload."""

    def __init__(
        self,
        config: SimConfig,
        scheduler: Scheduler,
        workload: Workload,
        probe=None,
        injector=None,
    ) -> None:
        if workload.num_services > len(config.services):
            raise ConfigError(
                f"workload uses {workload.num_services} services but the "
                f"config defines only {len(config.services)}"
            )
        self.config = config
        self.scheduler = scheduler
        self.workload = workload
        self.queues = QueueBank(config.num_cores, config.queue_capacity)
        self.reorder = ReorderDetector()
        self.metrics = SimMetrics(len(config.services), config.num_cores)
        #: optional :class:`repro.sim.probes.QueueProbe`-like sampler
        self.probe = probe
        #: optional :class:`repro.faults.FaultInjector` (dynamic events)
        self.injector = injector
        #: completion events popped by the last run (profiling signal)
        self.events_popped = 0
        self._ran = False
        # live run state, exposed for the injector (set up in run())
        self.events: EventQueue | None = None
        self.core_busy: list[bool] = []
        self.core_speed: list[float] = []
        self.core_current_pkt: list[int] = []
        self.core_last_service: list[int] = []
        self.killed_pkts: set[int] = set()
        self._start_packet = None
        self._drop_records: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    def run(self) -> SimReport:
        """Execute the full run and return the report."""
        if self._ran:
            raise SimulationError("a NetworkProcessorSim instance runs once")
        self._ran = True

        cfg = self.config
        wl = self.workload
        sched = self.scheduler
        sched.bind(self.queues)

        lat_model = cfg.latency_model()
        services = cfg.services
        fm_pen = cfg.fm_penalty_ns
        cc_pen = cfg.cc_penalty_ns
        # precompute T_proc constants per service for the hot loop
        base_ns = [services[s].base_ns for s in range(len(services))]
        per64_ns = [services[s].per_64b_ns for s in range(len(services))]

        queues = self.queues
        reorder = self.reorder
        metrics = self.metrics
        events = EventQueue()

        n_cores = cfg.num_cores
        core_busy = [False] * n_cores  # serving a packet right now
        core_last_service = [-1] * n_cores  # i-cache content
        core_speed = [1.0] * n_cores  # service-time multiplier (faults)
        core_current_pkt = [-1] * n_cores  # in-flight packet per core
        killed_pkts: set[int] = set()  # in-flight kills by the injector
        flow_last_core = np.full(wl.num_flows, -1, dtype=np.int32)
        flow_migrated = np.zeros(wl.num_flows, dtype=bool)

        arrival = wl.arrival_ns
        service = wl.service_id
        flow = wl.flow_id
        size = wl.size_bytes
        fhash = wl.flow_hash
        seq = wl.seq
        n = wl.num_packets
        collect_lat = cfg.collect_latencies
        latencies = metrics.latencies_ns
        record_dep = cfg.record_departures
        departures: list[tuple[int, int, int]] = []
        drop_records: list[tuple[int, int, int]] = []

        def start_packet(core: int, pkt: int, t_ns: int) -> None:
            """Begin service of packet *pkt* on *core* at *t_ns*."""
            sid = int(service[pkt])
            fid = int(flow[pkt])
            t_proc = base_ns[sid]
            p64 = per64_ns[sid]
            if p64:
                t_proc += round(p64 * int(size[pkt]) / 64)
            last = flow_last_core[fid]
            migrated = last >= 0 and last != core
            if migrated:
                t_proc += fm_pen
                metrics.flow_migration_events += 1
                flow_migrated[fid] = True
            flow_last_core[fid] = core
            if core_last_service[core] != sid:
                if core_last_service[core] >= 0:
                    t_proc += cc_pen
                    metrics.cold_cache_events += 1
                core_last_service[core] = sid
            speed = core_speed[core]
            if speed != 1.0:  # degraded core (repro.faults CoreSlowdown)
                t_proc = int(round(t_proc * speed))
            core_busy[core] = True
            core_current_pkt[core] = pkt
            metrics.busy_ns_per_core[core] += t_proc
            events.push(t_ns + t_proc, (core, pkt))

        injector = self.injector

        def complete_until(horizon_ns: int) -> None:
            """Drain completion events with time <= horizon."""
            for t_done, (core, pkt) in events.pop_until(horizon_ns):
                if core < 0:  # timed fault event, not a completion
                    injector.apply(pkt, t_done)
                    continue
                if killed_pkts and pkt in killed_pkts:
                    killed_pkts.discard(pkt)  # died with its core
                    continue
                metrics.departed += 1
                metrics.last_depart_ns = t_done  # pops are time-ordered
                reorder.on_depart(int(flow[pkt]), int(seq[pkt]))
                if collect_lat:
                    latencies.append(t_done - int(arrival[pkt]))
                if record_dep:
                    departures.append((int(flow[pkt]), int(seq[pkt]), t_done))
                q = queues[core]
                if q.is_empty:
                    core_busy[core] = False
                    core_current_pkt[core] = -1
                    sched.on_queue_empty(core, t_done)
                else:
                    start_packet(core, q.take(), t_done)

        # expose live state for the injector, then let it schedule its
        # timed events into the (still empty) heap
        self.events = events
        self.core_busy = core_busy
        self.core_speed = core_speed
        self.core_current_pkt = core_current_pkt
        self.core_last_service = core_last_service
        self.killed_pkts = killed_pkts
        self._start_packet = start_packet
        self._drop_records = drop_records
        if injector is not None:
            injector.bind(self)

        probe = self.probe
        if probe is not None and hasattr(probe, "bind"):
            probe.bind(self)  # full-state view for rich samplers
        for i in range(n):
            t = int(arrival[i])
            complete_until(t)
            if probe is not None:
                probe.maybe_sample(t, queues, metrics)
            metrics.generated += 1
            sid = int(service[i])
            metrics.generated_per_service[sid] += 1
            core = sched.select_core(int(flow[i]), sid, int(fhash[i]), t)
            if not 0 <= core < n_cores:
                raise SimulationError(
                    f"{sched.name} returned core {core} of {n_cores}"
                )
            if core_busy[core]:
                q = queues[core]
                if q.is_empty:
                    sched.on_queue_busy(core, t)
                if not q.offer(i):
                    metrics.dropped += 1
                    metrics.dropped_per_service[sid] += 1
                    if q.down:  # black-holed: the target core is dead
                        metrics.fault_dropped += 1
                    reorder.on_drop(int(flow[i]), int(seq[i]))
                    if record_dep:
                        drop_records.append((int(flow[i]), int(seq[i]), t))
            else:
                sched.on_queue_busy(core, t)
                start_packet(core, i, t)

        # drain phase: let queued work depart (bounded).  With a probe
        # attached the drain advances one probe period at a time so the
        # time series keeps covering departures after the last arrival;
        # an empty heap means nothing is in flight (a non-empty queue
        # implies a busy core, which implies a pending completion), so
        # further boundaries would only repeat a frozen state.
        last_t = int(arrival[-1]) if n else 0
        drain_end = last_t + cfg.drain_ns
        if probe is not None and cfg.drain_ns > 0:
            step = getattr(probe, "period_ns", 0) or cfg.drain_ns
            t = last_t + step
            # stop early when the next heap event is past the drain
            # bound: nothing can change before drain_end, so further
            # boundaries would only repeat a frozen state
            while t < drain_end and events:
                nxt = events.peek_time()
                if nxt is not None and nxt > drain_end:
                    break
                complete_until(t)
                probe.maybe_sample(t, queues, metrics)
                t += step
        complete_until(drain_end)
        if probe is not None:
            probe.maybe_sample(drain_end, queues, metrics)
        self.events_popped = events.popped
        # anything still in flight past the drain bound is abandoned
        # unscored (counted as neither departed nor dropped)

        duration = wl.duration_ns
        return metrics.finalize(
            duration_ns=duration,
            out_of_order=reorder.out_of_order,
            scheduler_name=sched.name,
            scheduler_stats=sched.stats(),
            migrated_flows=int(flow_migrated.sum()),
            departures=tuple(departures),
            drop_records=tuple(drop_records),
        )


def simulate(
    workload: Workload,
    scheduler: Scheduler,
    config: SimConfig | None = None,
    probe=None,
    injector=None,
) -> SimReport:
    """Convenience one-shot: run *scheduler* on *workload*."""
    return NetworkProcessorSim(
        config or SimConfig(), scheduler, workload, probe=probe,
        injector=injector,
    ).run()
