"""Bounded per-core input queues.

Each core owns a FIFO of packet descriptors bounded at
``queue_capacity`` (32 in the paper, after Ohlendorf et al.); "a packet
is lost when it is assigned to a queue which is already full"
(Sec. IV-C2).  :class:`QueueBank` also implements the scheduler-facing
:class:`~repro.schedulers.base.LoadView` protocol.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError

__all__ = ["BoundedQueue", "QueueBank"]


class BoundedQueue:
    """A FIFO of packet indices with a hard capacity."""

    __slots__ = ("capacity", "_items", "drops", "peak")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: deque[int] = deque()
        self.drops = 0
        self.peak = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def offer(self, item: int) -> bool:
        """Enqueue *item*; False (and a drop) when full."""
        if len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self._items.append(item)
        if len(self._items) > self.peak:
            self.peak = len(self._items)
        return True

    def take(self) -> int:
        """Dequeue the oldest item (raises IndexError when empty)."""
        return self._items.popleft()

    def clear(self) -> None:
        self._items.clear()


class QueueBank:
    """All cores' input queues; satisfies the ``LoadView`` protocol."""

    __slots__ = ("_queues", "_capacity")

    def __init__(self, num_cores: int, queue_capacity: int) -> None:
        if num_cores <= 0:
            raise ConfigError(f"need at least one core, got {num_cores}")
        self._queues = [BoundedQueue(queue_capacity) for _ in range(num_cores)]
        self._capacity = queue_capacity

    # LoadView protocol -------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self._queues)

    @property
    def queue_capacity(self) -> int:
        return self._capacity

    def occupancy(self, core_id: int) -> int:
        return len(self._queues[core_id])

    # direct access ------------------------------------------------------
    def __getitem__(self, core_id: int) -> BoundedQueue:
        return self._queues[core_id]

    def __iter__(self):
        return iter(self._queues)

    def total_drops(self) -> int:
        return sum(q.drops for q in self._queues)

    def occupancies(self) -> list[int]:
        return [len(q) for q in self._queues]
