"""Bounded per-core input queues.

Each core owns a FIFO of packet descriptors bounded at
``queue_capacity`` (32 in the paper, after Ohlendorf et al.); "a packet
is lost when it is assigned to a queue which is already full"
(Sec. IV-C2).  :class:`QueueBank` also implements the scheduler-facing
:class:`~repro.schedulers.base.LoadView` protocol.

A queue can be taken **down** (its core failed — see
:mod:`repro.faults`): a down queue refuses every ``offer`` and reports
its occupancy as the full capacity through the :class:`LoadView`.  That
models the backpressure a dead core's never-draining descriptor ring
asserts in hardware — load-aware schedulers that never heard about the
failure still steer away from it because it looks permanently full,
while its real FIFO stays empty.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError

__all__ = ["BoundedQueue", "QueueBank"]


class BoundedQueue:
    """A FIFO of packet indices with a hard capacity."""

    __slots__ = ("capacity", "_items", "drops", "peak", "down")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: deque[int] = deque()
        self.drops = 0
        self.peak = 0
        #: the owning core is dead; offers are refused (see module doc)
        self.down = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def offer(self, item: int) -> bool:
        """Enqueue *item*; False (and a drop) when full or down."""
        if self.down or len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self._items.append(item)
        if len(self._items) > self.peak:
            self.peak = len(self._items)
        return True

    def take(self) -> int:
        """Dequeue the oldest item (raises IndexError when empty)."""
        return self._items.popleft()

    def min_item(self) -> int | None:
        """Smallest queued packet index, or None when empty (window
        retirement scans this — after a fault reassignment FIFO order
        is no longer index order, so the head is not the minimum)."""
        return min(self._items) if self._items else None

    def drain(self) -> list[int]:
        """Remove and return all queued items, oldest first."""
        items = list(self._items)
        self._items.clear()
        return items

    def clear(self) -> None:
        self._items.clear()


class QueueBank:
    """All cores' input queues; satisfies the ``LoadView`` protocol."""

    __slots__ = ("_queues", "_capacity")

    def __init__(self, num_cores: int, queue_capacity: int) -> None:
        if num_cores <= 0:
            raise ConfigError(f"need at least one core, got {num_cores}")
        self._queues = [BoundedQueue(queue_capacity) for _ in range(num_cores)]
        self._capacity = queue_capacity

    # LoadView protocol -------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self._queues)

    @property
    def queue_capacity(self) -> int:
        return self._capacity

    def occupancy(self, core_id: int) -> int:
        q = self._queues[core_id]
        return self._capacity if q.down else len(q)

    # core health (driven by repro.faults) -------------------------------
    def mark_down(self, core_id: int) -> None:
        """The core died: refuse offers, report the queue as full."""
        self._queues[core_id].down = True

    def mark_up(self, core_id: int) -> None:
        """The core recovered: accept offers again."""
        self._queues[core_id].down = False

    def is_down(self, core_id: int) -> bool:
        return self._queues[core_id].down

    def cores_down(self) -> list[int]:
        """Ids of cores currently marked down (ascending)."""
        return [c for c, q in enumerate(self._queues) if q.down]

    # direct access ------------------------------------------------------
    def __getitem__(self, core_id: int) -> BoundedQueue:
        return self._queues[core_id]

    def __iter__(self):
        return iter(self._queues)

    def total_drops(self) -> int:
        return sum(q.drops for q in self._queues)

    def occupancies(self) -> list[int]:
        """Raw FIFO depths per core (a down core reads 0 here; the
        ``LoadView`` :meth:`occupancy` is what reports it as full)."""
        return [len(q) for q in self._queues]
