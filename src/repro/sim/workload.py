"""Workload assembly: merge per-service arrival processes with trace
headers into the flat arrays the simulator's hot loop consumes.

Following the paper's methodology, *rates* come from the Holt-Winters
model while *headers* (flow ids, sizes) come from a separate trace per
service, consumed in trace order — so realistic flow interleaving and
burstiness survive the re-pacing.  Flow ids are re-based per service so
the global id space stays dense and service-disjoint (a flow belongs to
exactly one service, as in the paper's workload model).

The workload also carries each packet's pre-computed CRC16 flow hash
(one vectorised batch per service) and per-flow-packet sequence numbers
for the reorder detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.hashing.crc import CRC16_CCITT, CRCSpec
from repro.hashing.five_tuple import flow_hash_batch
from repro.sim.generator import HoltWintersParams, arrival_times, build_rate_model
from repro.trace.trace import Trace
from repro.util.rng import spawn_rngs

__all__ = ["Workload", "build_workload", "service_flow_hashes"]


@dataclass(frozen=True)
class Workload:
    """Flat, time-sorted packet arrays ready for simulation.

    All arrays share one length (packet count):

    * ``arrival_ns`` — sorted int64 arrival instants;
    * ``service_id`` — int32 service per packet;
    * ``flow_id`` — int64 globally-dense flow id;
    * ``size_bytes`` — int32 wire size;
    * ``flow_hash`` — int64 CRC16 (or other) hash of the flow key;
    * ``seq`` — int64 per-flow packet sequence number (0-based).

    ``num_flows``/``num_services`` size the simulator's state arrays.
    """

    arrival_ns: np.ndarray
    service_id: np.ndarray
    flow_id: np.ndarray
    size_bytes: np.ndarray
    flow_hash: np.ndarray
    seq: np.ndarray
    num_flows: int
    num_services: int
    duration_ns: int

    def __post_init__(self) -> None:
        n = self.arrival_ns.shape[0]
        for name in ("service_id", "flow_id", "size_bytes", "flow_hash", "seq"):
            if getattr(self, name).shape[0] != n:
                raise ConfigError(f"workload column {name} length mismatch")
        if n:
            if np.any(np.diff(self.arrival_ns) < 0):
                raise ConfigError("arrival times must be sorted")
            if int(self.flow_id.max()) >= self.num_flows:
                raise ConfigError("flow id out of range")
            if int(self.service_id.max()) >= self.num_services:
                raise ConfigError("service id out of range")

    @property
    def num_packets(self) -> int:
        return int(self.arrival_ns.shape[0])

    def __len__(self) -> int:
        return self.num_packets

    def offered_rate_pps(self) -> float:
        """Mean offered rate over the workload duration."""
        if self.duration_ns <= 0:
            return 0.0
        return self.num_packets / (self.duration_ns / 1e9)

    @classmethod
    def from_chunks(
        cls,
        chunks: list,
        *,
        num_flows: int,
        num_services: int,
        duration_ns: int,
    ) -> "Workload":
        """Assemble a workload from consecutive
        :class:`~repro.sim.source.WorkloadChunk` column sets (anything
        with the six packet-column attributes works)."""

        def col(name: str, dtype) -> np.ndarray:
            if not chunks:
                return np.empty(0, dtype=dtype)
            return np.concatenate([getattr(c, name) for c in chunks])

        return cls(
            arrival_ns=col("arrival_ns", np.int64),
            service_id=col("service_id", np.int32),
            flow_id=col("flow_id", np.int64),
            size_bytes=col("size_bytes", np.int32),
            flow_hash=col("flow_hash", np.int64),
            seq=col("seq", np.int64),
            num_flows=num_flows,
            num_services=num_services,
            duration_ns=duration_ns,
        )


def _per_flow_sequences(flow_id: np.ndarray, num_flows: int) -> np.ndarray:
    """Vectorised per-flow 0-based sequence numbers in arrival order.

    ``seq[i] = #{j < i : flow_id[j] == flow_id[i]}`` — computed by
    sorting packet indices by (flow, position) and subtracting each
    group's start offset.
    """
    n = flow_id.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(flow_id, kind="stable")  # stable keeps arrival order
    counts = np.bincount(flow_id, minlength=num_flows)
    group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(n, dtype=np.int64) - np.repeat(group_starts, counts)
    seq = np.empty(n, dtype=np.int64)
    seq[order] = within
    return seq


def service_flow_hashes(trace: Trace, hash_spec: CRCSpec = CRC16_CCITT) -> np.ndarray:
    """Per-flow hash table of one service's trace (one vectorised CRC
    batch over the flow 5-tuples); chunk assembly then indexes it by
    local flow id, so streamed and materialized builds hash identically."""
    return flow_hash_batch(
        trace.flows_src_ip, trace.flows_dst_ip,
        trace.flows_src_port, trace.flows_dst_port, trace.flows_proto,
        spec=hash_spec,
    ).astype(np.int64)


def build_workload(
    traces: list[Trace],
    params: list[HoltWintersParams],
    duration_ns: int,
    seed: int | np.random.Generator | None = 0,
    hash_spec: CRCSpec = CRC16_CCITT,
) -> Workload:
    """Build a multi-service workload.

    *traces* and *params* are parallel (one per service).  Headers are
    taken from each service's trace in order, wrapping around if the
    arrival process outruns the trace (the wrap preserves flow ids, so
    statistics remain consistent).
    """
    if not traces:
        raise ConfigError("need at least one service trace")
    if len(traces) != len(params):
        raise ConfigError(
            f"{len(traces)} traces vs {len(params)} parameter rows"
        )
    if duration_ns <= 0:
        raise ConfigError(f"duration must be positive, got {duration_ns}")
    rngs = spawn_rngs(seed, len(traces))

    per_service: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    flow_offset = 0
    for sid, (trace, p, rng) in enumerate(zip(traces, params, rngs)):
        if trace.num_packets == 0:
            raise ConfigError(f"service {sid} has an empty trace")
        times = arrival_times(build_rate_model(p), duration_ns, rng)
        k = times.shape[0]
        idx = trace.header_cursor().take(k)
        local_fids = trace.flow_id[idx]
        fids = local_fids + flow_offset
        sizes = trace.size_bytes[idx]
        pkt_hashes = service_flow_hashes(trace, hash_spec)[local_fids]
        per_service.append((times, fids, sizes, pkt_hashes))
        flow_offset += trace.num_flows

    arrival = np.concatenate([s[0] for s in per_service])
    service = np.concatenate(
        [np.full(s[0].shape[0], sid, dtype=np.int32) for sid, s in enumerate(per_service)]
    )
    flow = np.concatenate([s[1] for s in per_service])
    size = np.concatenate([s[2] for s in per_service]).astype(np.int32)
    fhash = np.concatenate([s[3] for s in per_service])

    order = np.argsort(arrival, kind="stable")
    arrival = arrival[order]
    service = service[order]
    flow = flow[order]
    size = size[order]
    fhash = fhash[order]
    seq = _per_flow_sequences(flow, flow_offset)

    return Workload(
        arrival_ns=arrival,
        service_id=service,
        flow_id=flow,
        size_bytes=size,
        flow_hash=fhash,
        seq=seq,
        num_flows=flow_offset,
        num_services=len(traces),
        duration_ns=duration_ns,
    )
