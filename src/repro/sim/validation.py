"""Analytic cross-validation of the discrete-event simulator.

A simulator substituting for the paper's SpecC model should be checked
against something exact.  For a single core fed Poisson arrivals with
deterministic service (one service, fixed packet size, no penalties)
the system is an **M/D/1/K queue**, whose loss probability and mean
occupancy follow from the embedded Markov chain at departure epochs.
:func:`md1k_loss_probability` computes those reference numbers and the
test suite asserts the simulator matches them within sampling error.

The embedded-chain construction (see e.g. Gross & Harris, ch. 5): with
``a_j = e^{-rho} rho^j / j!`` the probability of *j* Poisson arrivals
during one deterministic service, the queue-length chain at departures
has transition matrix built from ``a_j`` with truncation at the buffer
limit; its stationary vector yields the blocking probability via the
standard finite-queue correction.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["md1k_loss_probability", "md1k_metrics"]


def _embedded_chain(rho: float, k_system: int) -> np.ndarray:
    """Stationary distribution of queue length at departure epochs for
    M/D/1 with at most *k_system* packets in the system."""
    n = k_system  # states 0..k_system-1 seen at departures
    a = [math.exp(-rho) * rho**j / math.factorial(j) for j in range(k_system + 1)]
    tail = lambda j: max(0.0, 1.0 - sum(a[:j]))  # noqa: E731
    p = np.zeros((n, n))
    for i in range(n):
        # after a departure with i in system, the next service admits
        # arrivals; from state i, next departure leaves i-1+j (j arrivals
        # during the service), capped by the buffer
        base = max(i - 1, 0)
        for j in range(0, n - base):
            p[i, base + j] = a[j]
        p[i, n - 1] = tail(n - 1 - base)
    # stationary vector: solve pi P = pi
    eigvals, eigvecs = np.linalg.eig(p.T)
    idx = int(np.argmin(np.abs(eigvals - 1.0)))
    pi = np.real(eigvecs[:, idx])
    pi = np.abs(pi)
    return pi / pi.sum()


def md1k_loss_probability(rho: float, k_system: int) -> float:
    """Blocking probability of an M/D/1 queue holding at most
    *k_system* packets (including the one in service).

    ``rho`` is offered load (arrival rate x service time).  Uses the
    standard departure-epoch correction
    ``P_loss = 1 - 1 / (pi_0 + rho')`` ... expressed via the identity
    ``throughput = lambda (1 - P_loss) = mu (1 - P_idle_server)``.
    """
    if rho <= 0:
        raise ValueError(f"rho must be positive, got {rho}")
    if k_system < 1:
        raise ValueError(f"k_system must be >= 1, got {k_system}")
    if k_system == 1:
        # pure loss system with deterministic service: Erlang-B-like
        # special case M/D/1/1 -> P_loss = rho/(1+rho) holds for M/G/1/1
        return rho / (1.0 + rho)
    pi = _embedded_chain(rho, k_system)
    # Keilson's relation for M/G/1/K: with pi the departure-epoch
    # distribution, P_loss = 1 - 1/(pi_0 + rho) ... normalised form:
    return 1.0 - 1.0 / (float(pi[0]) + rho)


def md1k_metrics(
    rate_pps: float, service_ns: int, queue_capacity: int
) -> dict[str, float]:
    """Reference numbers for the simulator's single-core geometry.

    The simulator's core holds one packet in service plus
    ``queue_capacity`` waiting, so ``k_system = queue_capacity + 1``.
    """
    rho = rate_pps * service_ns / 1e9
    loss = md1k_loss_probability(rho, queue_capacity + 1)
    return {
        "rho": rho,
        "loss_probability": loss,
        "throughput_pps": rate_pps * (1.0 - loss),
        "utilisation": min(rho * (1.0 - loss), 1.0),
    }
