"""Engine registry: which event core runs the simulation.

Historically this module *was* the event queue; the implementation now
lives in :mod:`repro.sim.events` (``EventQueue`` is re-exported below
for compatibility) and this module owns **selection**: mapping an
engine name to a queue class plus an optional span-drain compute
backend, with graceful degradation when optional dependencies are
missing.

Registered engines:

========================  =======================  ==================
name                      event queue              span backend
========================  =======================  ==================
``heap``                  binary heap (oracle)     — (scalar/closure)
``calendar``              calendar queue           numpy (interpreted)
``calendar-numba``        calendar queue           numba (njit)
========================  =======================  ==================

``heap`` is the default and the bit-identity oracle: the engines are
contractually bit-identical (``tests/sim/test_engine_parity.py``), the
calendar engines are just faster.  ``calendar-numba`` silently
degrades to the numpy backend when numba is not importable; the
resolved :class:`EngineSpec` records ``fallback_reason`` so manifests
and CLIs can report the degradation instead of hiding it.

Selection precedence: explicit name argument > ``REPRO_SIM_ENGINE``
environment variable > ``"heap"``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events.backend import (
    EngineBackend,
    NumbaBackend,
    NumpyBackend,
    numba_available,
)
from repro.sim.events.base import EventQueue, EventSnapshot
from repro.sim.events.calendar import CalendarEventQueue

__all__ = [
    "EventQueue",
    "EventSnapshot",
    "EngineSpec",
    "available_engines",
    "resolve_engine",
    "DEFAULT_ENGINE",
]

DEFAULT_ENGINE = "heap"

_ENGINE_ENV = "REPRO_SIM_ENGINE"


@dataclass(frozen=True)
class EngineSpec:
    """A resolved engine: what will actually run.

    ``name`` is the engine that runs; ``requested`` what was asked for
    (they differ only on fallback, with ``fallback_reason`` saying
    why).  ``queue_cls`` builds event queues; ``span_backend`` is the
    compute backend for the batched span drain, or None for the
    scalar-only heap engine.
    """

    name: str
    requested: str
    queue_cls: Callable[[], Any]
    span_backend: EngineBackend | None
    fallback_reason: str | None = None

    def make_queue(self) -> Any:
        return self.queue_cls()


def available_engines() -> tuple[str, ...]:
    """Engine names accepted by :func:`resolve_engine` (the numba one
    is always listed; it resolves with a fallback when unavailable)."""
    return ("heap", "calendar", "calendar-numba")


def resolve_engine(name: str | None = None) -> EngineSpec:
    """Map an engine name to an :class:`EngineSpec`.

    ``None`` consults the ``REPRO_SIM_ENGINE`` environment variable and
    falls back to :data:`DEFAULT_ENGINE`.  Unknown names raise
    :class:`SimulationError`; a missing numba degrades to the numpy
    backend with the reason recorded.
    """
    requested = name or os.environ.get(_ENGINE_ENV) or DEFAULT_ENGINE
    if requested == "heap":
        return EngineSpec(
            name="heap",
            requested=requested,
            queue_cls=EventQueue,
            span_backend=None,
        )
    if requested == "calendar":
        return EngineSpec(
            name="calendar",
            requested=requested,
            queue_cls=CalendarEventQueue,
            span_backend=NumpyBackend(),
        )
    if requested == "calendar-numba":
        ok, reason = numba_available()
        if not ok:
            return EngineSpec(
                name="calendar",
                requested=requested,
                queue_cls=CalendarEventQueue,
                span_backend=NumpyBackend(),
                fallback_reason=reason,
            )
        return EngineSpec(
            name="calendar-numba",
            requested=requested,
            queue_cls=CalendarEventQueue,
            span_backend=NumbaBackend(),
        )
    raise SimulationError(
        f"unknown engine {requested!r}; expected one of "
        f"{', '.join(available_engines())}"
    )
