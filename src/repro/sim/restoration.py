"""Order *restoration* at egress — the alternative the paper argues
against (Sec. VI, Shi et al. [35]).

Instead of preserving order inside the processor, packets may be
processed out of order and re-sequenced in an egress buffer just before
they leave.  The paper's criticism: the buffer has "considerable
storage overheads" and does nothing for flow locality.  This module
quantifies that trade-off on a recorded departure sequence:

* :func:`restoration_cost` — the buffer occupancy needed to restore
  order *fully* (max and mean packets resident);
* :class:`RestorationBuffer` — a bounded re-sequencer: early packets
  wait for their predecessors; when the buffer overflows, the oldest
  resident is released out of order (what real hardware does), so a
  bounded buffer converts storage into residual reorder.

Feed either with ``SimReport.departures`` (record with
``SimConfig(record_departures=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RestorationBuffer", "RestorationResult", "restoration_cost"]


@dataclass(frozen=True)
class RestorationResult:
    """Outcome of pushing a departure sequence through a buffer."""

    released: int
    residual_out_of_order: int
    overflow_releases: int
    max_occupancy: int
    mean_occupancy: float

    @property
    def residual_fraction(self) -> float:
        return self.residual_out_of_order / self.released if self.released else 0.0


class RestorationBuffer:
    """A bounded egress re-sequencer.

    Packets of each flow must leave in sequence order.  An arriving
    packet whose predecessors have all left is released immediately
    (and may unlock buffered successors).  Otherwise it is buffered.
    When the buffer is full, the *oldest* buffered packet is forced out
    — it leaves out of order, and sequencing for its flow skips past it
    (the downstream receiver sees a reorder, exactly once).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._next: dict[int, int] = {}       # flow -> next seq to release
        self._held: dict[tuple[int, int], int] = {}  # (flow, seq) -> arrival idx
        self._skipped: set[tuple[int, int]] = set()  # dropped upstream
        self._arrival = 0
        self.released = 0
        self.residual_out_of_order = 0
        self.overflow_releases = 0
        self.max_occupancy = 0
        self._occupancy_sum = 0
        self._steps = 0

    def __len__(self) -> int:
        return len(self._held)

    def _release_ready(self, flow: int) -> None:
        """Release any buffered packets now in sequence for *flow*
        (sequence holes left by upstream drops are consumed too)."""
        nxt = self._next.get(flow, 0)
        while True:
            if (flow, nxt) in self._held:
                del self._held[(flow, nxt)]
                self.released += 1
            elif (flow, nxt) in self._skipped:
                self._skipped.discard((flow, nxt))
            else:
                break
            nxt += 1
        self._next[flow] = nxt

    def skip(self, flow: int, seq: int) -> None:
        """The packet was dropped upstream and will never arrive; its
        successors must not wait for it."""
        if seq < self._next.get(flow, 0):
            return
        self._skipped.add((flow, seq))
        self._release_ready(flow)

    def push(self, flow: int, seq: int) -> None:
        """One departing packet reaches the egress buffer."""
        self._arrival += 1
        nxt = self._next.get(flow, 0)
        if seq == nxt:
            self.released += 1
            self._next[flow] = nxt + 1
            self._release_ready(flow)
        elif seq < nxt:
            # predecessor already skipped by an overflow: release now,
            # it is out of order for the receiver
            self.released += 1
            self.residual_out_of_order += 1
        else:
            self._held[(flow, seq)] = self._arrival
            if len(self._held) > self.capacity:
                self._force_oldest()
        if len(self._held) > self.max_occupancy:
            self.max_occupancy = len(self._held)
        self._occupancy_sum += len(self._held)
        self._steps += 1

    def _force_oldest(self) -> None:
        """Overflow: evict the longest-waiting packet out of order."""
        (flow, seq), _ = min(self._held.items(), key=lambda kv: kv[1])
        del self._held[(flow, seq)]
        self.released += 1
        self.residual_out_of_order += 1
        self.overflow_releases += 1
        # sequencing skips everything up to and including the evictee
        if seq >= self._next.get(flow, 0):
            self._next[flow] = seq + 1
            self._release_ready(flow)

    def flush(self) -> None:
        """End of stream: release everything still held, in flow/seq
        order (these were waiting for packets that never departed —
        drops — so they are NOT counted as reordered)."""
        for flow, seq in sorted(self._held):
            self.released += 1
            self._next[flow] = max(self._next.get(flow, 0), seq + 1)
        self._held.clear()

    def result(self) -> RestorationResult:
        return RestorationResult(
            released=self.released,
            residual_out_of_order=self.residual_out_of_order,
            overflow_releases=self.overflow_releases,
            max_occupancy=self.max_occupancy,
            mean_occupancy=self._occupancy_sum / self._steps if self._steps else 0.0,
        )


def restoration_cost(
    departures: tuple[tuple[int, int, int], ...] | list[tuple[int, int, int]],
    capacity: int | None = None,
    drops: tuple[tuple[int, int, int], ...] | list[tuple[int, int, int]] = (),
) -> RestorationResult:
    """Push a ``(flow, seq, depart_ns)`` sequence through a buffer.

    With ``capacity=None`` the buffer is effectively unbounded, so
    ``max_occupancy`` reports the storage a *full* restoration needs
    (the paper's "considerable storage overheads") and the residual
    reorder is 0 for packets whose predecessors departed.

    ``drops`` are upstream losses ``(flow, seq, drop_ns)``: the buffer
    is told about each at its timestamp so successors of a dropped
    packet do not wait for it (real re-sequencers use timeouts for
    this; the drop feed is the zero-timeout idealisation).  Record both
    feeds with ``SimConfig(record_departures=True)``.
    """
    buf = RestorationBuffer(capacity if capacity is not None else 1 << 60)
    merged = [(t, 1, flow, seq) for flow, seq, t in departures]
    merged += [(t, 0, flow, seq) for flow, seq, t in drops]
    merged.sort()
    for _t, is_depart, flow, seq in merged:
        if is_depart:
            buf.push(flow, seq)
        else:
            buf.skip(flow, seq)
    buf.flush()
    return buf.result()
