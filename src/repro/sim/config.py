"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigError
from repro.net.service import ServiceSet, default_services
from repro.sim.latency import LatencyModel

__all__ = ["SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """Parameters of the simulated network processor.

    Defaults follow the paper's evaluation platform: 16 data-plane
    cores, 32-descriptor input queues, the four Fig. 5 services with
    GEMS-derived latency constants, FM penalty 0.8 us, cold-cache
    penalty 10 us.

    ``drain_ns`` bounds how long the simulator keeps serving queued
    packets after the last arrival (so in-flight packets depart and are
    scored); 0 cuts the run at the last arrival.
    ``collect_latencies`` gates per-packet latency recording (a list
    append per departure — disable for the biggest runs).
    ``record_departures`` additionally stores the egress sequence
    ``(flow_id, seq, depart_ns)`` on the report, enabling post-hoc
    analyses such as the order-restoration buffer study
    (:mod:`repro.sim.restoration`).
    """

    num_cores: int = 16
    queue_capacity: int = 32
    services: ServiceSet = field(default_factory=default_services)
    fm_penalty_ns: int = units.us(0.8)
    cc_penalty_ns: int = units.us(10.0)
    drain_ns: int = units.ms(50)
    collect_latencies: bool = True
    record_departures: bool = False

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError(f"num_cores must be positive, got {self.num_cores}")
        if self.queue_capacity <= 0:
            raise ConfigError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.drain_ns < 0:
            raise ConfigError(f"drain_ns must be >= 0, got {self.drain_ns}")
        if self.fm_penalty_ns < 0 or self.cc_penalty_ns < 0:
            raise ConfigError("penalties must be >= 0")

    def latency_model(self) -> LatencyModel:
        return LatencyModel(
            services=self.services,
            fm_penalty_ns=self.fm_penalty_ns,
            cc_penalty_ns=self.cc_penalty_ns,
        )
