"""The processing-delay model — paper Sec. IV-C3, eq. (3)-(5), Table III.

``PD_i = T_proc,i + FM_penalty + CC_penalty`` where

* ``T_proc,i`` comes from the service's affine size model (measured on
  GEMS by the authors; we use their published constants via
  :class:`~repro.net.service.Service`),
* ``FM_penalty`` (0.8 us = four cache misses: two for routing data, two
  for per-flow data) applies when the flow just migrated to this core,
* ``CC_penalty`` (10 us, the IP-forwarding image reload) applies when
  the core's last packet belonged to a *different service* — the 16 KB
  I-cache holds exactly one application image.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.net.service import ServiceSet

__all__ = ["CoreConfig", "TABLE_III_CORE", "LatencyModel"]


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """The data-plane core of Table III (documentation/timing metadata;
    behaviourally the simulator only needs the derived penalties)."""

    frequency_ghz: float = 1.0
    pipeline_stages: int = 7
    issue_width: int = 2
    branch_predictor: str = "gshare/BTB, 128 entries each"
    icache_kb: int = 16
    icache_ways: int = 2
    dcache_kb: int = 32
    dcache_ways: int = 4


#: The exact Table III configuration.
TABLE_III_CORE = CoreConfig()


@dataclass(frozen=True)
class LatencyModel:
    """Computes per-packet processing delays for a service set."""

    services: ServiceSet
    fm_penalty_ns: int = units.us(0.8)
    cc_penalty_ns: int = units.us(10.0)
    core: CoreConfig = TABLE_III_CORE

    def __post_init__(self) -> None:
        if self.fm_penalty_ns < 0 or self.cc_penalty_ns < 0:
            raise ValueError("penalties must be >= 0")

    def processing_ns(
        self,
        service_id: int,
        size_bytes: int,
        *,
        migrated: bool,
        cold_cache: bool,
    ) -> int:
        """``PD_i`` of eq. (3) in integer nanoseconds."""
        pd = self.services[service_id].processing_ns(size_bytes)
        if migrated:
            pd += self.fm_penalty_ns
        if cold_cache:
            pd += self.cc_penalty_ns
        return pd

    def t_proc_ns(self, service_id: int, size_bytes: int) -> int:
        """Bare ``T_proc,i`` without penalties."""
        return self.services[service_id].processing_ns(size_bytes)

    def capacity_pps(
        self, cores_per_service: list[int], mean_size_bytes: float = 64.0
    ) -> float:
        """Ideal aggregate throughput of an allocation (no penalties)."""
        return self.services.capacity_pps(cores_per_service, mean_size_bytes)
