"""Partitioned packet sources: each shard's slice of the traffic.

Both filters wrap a fresh clone of the full (already traffic-
transformed) source and re-emit the masked sub-stream re-based to its
own consecutive packet indexing, preserving the full
``clone/snapshot/restore`` cursor contract.  Flow identity is global
and every flow lives wholly inside one shard in both modes (a flow
has one service, and a statically-mapped flow has one core), so the
``seq`` column and the reorder detector keep working unchanged.

:class:`CorePartitionSource` (cores mode) replays the scheduler's own
vectorized plan over a pristine copy bound to an all-idle load view:
for a ``shard_static`` scheduler the planned core of every packet *is*
the core the real run will choose, so "packets of core group G" is a
pure function of the packet columns.  The planning copy must never
mutate its tables — a ``map_epoch`` bump or a ``-1`` entry during
planning means the scheduler is not statically partitionable and
raises immediately.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.errors import SimulationError
from repro.sim.source import PacketSource, WorkloadChunk

__all__ = ["CorePartitionSource", "ServiceFilterSource"]


class _PlanView:
    """An all-idle :class:`~repro.schedulers.base.LoadView` for the
    planning copy of a scheduler (occupancy never read by a static
    plan, but bind() wants a complete view)."""

    def __init__(self, num_cores: int, queue_capacity: int) -> None:
        self._num_cores = num_cores
        self._queue_capacity = queue_capacity

    @property
    def num_cores(self) -> int:
        return self._num_cores

    @property
    def queue_capacity(self) -> int:
        return self._queue_capacity

    def occupancy(self, core_id: int) -> int:
        return 0


class _FilteredSource(PacketSource):
    """Shared plumbing: mask inner chunks, re-base, keep the cursor
    contract.  Subclasses implement :meth:`_mask` (and may override
    :meth:`_emit` to transform the surviving columns)."""

    def __init__(self, inner: PacketSource) -> None:
        super().__init__()
        self.inner = inner
        self.num_flows = inner.num_flows
        self.duration_ns = inner.duration_ns
        self.chunk_size = inner.chunk_size
        self._emitted = 0
        self._count: int | None = None

    # -- sizing ---------------------------------------------------------
    @property
    def num_packets(self) -> int:
        """Packets surviving the filter (lazily counted by a dedicated
        generation pass; the kernel itself never asks)."""
        if self._count is None:
            n = 0
            for chunk in self.iter_chunks():
                n += len(chunk)
            self._count = n
        return self._count

    # -- filter hooks ---------------------------------------------------
    def _mask(self, chunk: WorkloadChunk) -> np.ndarray:
        raise NotImplementedError

    def _emit(self, chunk: WorkloadChunk, mask: np.ndarray) -> tuple:
        if mask.all():
            return (
                chunk.arrival_ns, chunk.service_id, chunk.flow_id,
                chunk.size_bytes, chunk.flow_hash, chunk.seq,
            )
        return (
            chunk.arrival_ns[mask], chunk.service_id[mask],
            chunk.flow_id[mask], chunk.size_bytes[mask],
            chunk.flow_hash[mask], chunk.seq[mask],
        )

    # -- cursor ---------------------------------------------------------
    def next_chunk(self) -> WorkloadChunk | None:
        while True:
            chunk = self.inner.next_chunk()
            if chunk is None:
                return None
            mask = self._mask(chunk)
            if not mask.any():
                continue  # nothing of ours in this block; keep pulling
            cols = self._emit(chunk, mask)
            base = self._emitted
            self._emitted += int(cols[0].shape[0])
            return WorkloadChunk(base, *cols)

    def snapshot(self) -> dict:
        return {"inner": self.inner.snapshot(), "emitted": self._emitted}

    def restore(self, snapshot: dict) -> None:
        self.inner.restore(snapshot["inner"])
        self._emitted = int(snapshot["emitted"])


class CorePartitionSource(_FilteredSource):
    """The packets a static scheduler routes into one core group.

    *scheduler* is kept pristine as the plan prototype: every cursor
    (the object itself and each :meth:`clone`) deep-copies it and binds
    the copy to an all-idle view, then replays ``assign_batch`` per
    chunk to find each packet's planned core.
    """

    def __init__(
        self,
        inner: PacketSource,
        scheduler,
        core_group,
        num_cores: int,
        queue_capacity: int,
    ) -> None:
        super().__init__(inner)
        self.num_services = inner.num_services
        self._proto = scheduler
        self._num_cores = num_cores
        self._queue_capacity = queue_capacity
        self._group = tuple(core_group)
        member = np.zeros(num_cores, dtype=bool)
        member[list(self._group)] = True
        self._member = member
        planner = copy.deepcopy(scheduler)
        planner.bind(_PlanView(num_cores, queue_capacity))
        self._planner = planner

    def _mask(self, chunk: WorkloadChunk) -> np.ndarray:
        sched = self._planner
        n = len(chunk)
        cores = np.empty(n, dtype=np.int64)
        epoch = sched.map_epoch
        pos = 0
        while pos < n:
            planned = sched.assign_batch(
                chunk.flow_hash[pos:], chunk.service_id[pos:],
                chunk.flow_id[pos:], chunk.arrival_ns[pos:],
                start_index=chunk.base + pos,
            )
            if (
                planned is None
                or len(planned) == 0
                or sched.map_epoch != epoch
            ):
                raise SimulationError(
                    f"scheduler {sched.name!r} cannot be core-partitioned: "
                    "its assignment plan stalled or mutated during planning"
                )
            m = len(planned)
            cores[pos:pos + m] = planned
            pos += m
        if (cores < 0).any() or (cores >= self._num_cores).any():
            raise SimulationError(
                f"scheduler {sched.name!r} planned an out-of-range or "
                "scalar-path core; core partitioning requires a fully "
                "static plan"
            )
        return self._member[cores]

    def clone(self) -> "CorePartitionSource":
        src = CorePartitionSource(
            self.inner.clone(), self._proto, self._group,
            self._num_cores, self._queue_capacity,
        )
        src._count = self._count
        return src


class ServiceFilterSource(_FilteredSource):
    """One shard's service slice, relabelled to dense local ids.

    *services* are the global service ids this shard owns (ascending);
    global id ``services[i]`` becomes local id ``i``.  Flow ids stay
    global — services are flow-disjoint, so per-flow state (sequence
    numbers, reorder scoring, migration pins) never crosses shards.
    """

    def __init__(self, inner: PacketSource, services) -> None:
        super().__init__(inner)
        self._services = tuple(services)
        self.num_services = len(self._services)
        lut = np.full(inner.num_services, -1, dtype=np.int32)
        for local, sid in enumerate(self._services):
            if sid < inner.num_services:  # platform may define more
                lut[sid] = local          # services than the traffic uses
        self._lut = lut

    def _mask(self, chunk: WorkloadChunk) -> np.ndarray:
        return self._lut[chunk.service_id] >= 0

    def _emit(self, chunk: WorkloadChunk, mask: np.ndarray) -> tuple:
        cols = super()._emit(chunk, mask)
        return (cols[0], self._lut[cols[1]], *cols[2:])

    def clone(self) -> "ServiceFilterSource":
        src = ServiceFilterSource(self.inner.clone(), self._services)
        src._count = self._count
        return src
