"""One shard: a full :class:`~repro.sim.kernel.SimKernel` over a slice
of the system, plus the barrier-protocol surface the coordinator
drives.  A :class:`ShardSpec` is the picklable build recipe shipped to
a worker process; the :class:`Shard` lives worker-side (or inline) and
is advanced through exactly three entry points:

* ``run_arrivals`` — cores mode: dispatch every arrival, report the
  shard's last arrival instant (the only synchronisation needed);
* ``window_step`` — services mode: apply the previous barrier's
  resolved revokes and grants, advance one conservative window, and
  return this window's mailbox traffic;
* ``finish`` — drain against the *global* last arrival and return the
  :class:`ShardResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.config import SimConfig
from repro.sim.kernel import SimKernel
from repro.sim.metrics import SimReport
from repro.sim.sharding.mailbox import CoreOffer, CoreRequest
from repro.sim.source import PacketSource

__all__ = ["Shard", "ShardSpec", "ShardResult"]


@dataclass
class ShardSpec:
    """Everything needed to build one shard in a fresh process."""

    shard_id: int
    mode: str  # "cores" | "services"
    config: SimConfig
    source: PacketSource
    scheduler: object
    platform_schedule: FaultSchedule | None = None
    drain_policy: str = "drop"
    engine: str | None = None
    vectorized: bool = True


@dataclass
class ShardResult:
    """One shard's finished run, ready for exact aggregation.

    ``busy_ns`` and ``latencies_ns`` are the *raw* metrics (the report
    only carries derived utilisation and a latency summary; exact
    merging needs the underlying integers).
    """

    shard_id: int
    report: SimReport
    busy_ns: list[int]
    latencies_ns: list[int]
    last_arrival_ns: int
    map_epoch_moved: bool = False
    windows: int = 0
    grants_in: int = 0
    grants_out: int = 0
    service_ids: tuple[int, ...] = field(default_factory=tuple)


class Shard:
    """Worker-side wrapper binding a kernel to the barrier protocol."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.kernel = SimKernel(
            spec.config,
            spec.scheduler,
            spec.source,
            vectorized=spec.vectorized,
            engine=spec.engine,
        )
        if spec.platform_schedule is not None and len(spec.platform_schedule):
            self.kernel.attach_injector(
                FaultInjector(spec.platform_schedule, drain_policy=spec.drain_policy)
            )
        self.windows = 0
        self.grants_in = 0
        self.grants_out = 0
        # any map-table mutation after this point means the shard's
        # routing diverged from its static partition (cores mode only)
        self._epoch0 = self.kernel.scheduler.map_epoch

    # -- cores mode -----------------------------------------------------
    def run_arrivals(self, _arg=None) -> int:
        """Dispatch every arrival; returns the shard's last arrival."""
        return self.kernel.run_arrivals()

    # -- services mode --------------------------------------------------
    def window_step(self, payload) -> dict:
        """Apply the previous barrier's outcome, advance one window.

        *payload* is ``(barrier_ns, revokes, grants, advance_to)``:
        ``revokes`` the cores this shard must release, ``grants`` the
        ``(core, local_service)`` pairs it adopts.  No simulated time
        has passed since the revoked cores were offered (offers are
        collected at the barrier the coordinator resolved), so a
        refused revoke is a protocol invariant violation, not a race.
        """
        barrier_ns, revokes, grants, advance_to = payload
        kernel = self.kernel
        sched = kernel.scheduler
        for core in revokes:
            if not sched.shard_revoke(core, barrier_ns):
                raise SimulationError(
                    f"shard {self.spec.shard_id} refused to revoke core "
                    f"{core} it offered at the same barrier"
                )
            self.grants_out += 1
        for core, service in grants:
            sched.shard_grant(core, service, barrier_ns)
            self.grants_in += 1
        if advance_to > kernel.now_ns:
            kernel.run_until(advance_to)
        self.windows += 1
        st = kernel.state
        shard_id = self.spec.shard_id
        requests = [
            CoreRequest(t_ns=t, shard=shard_id, service=sid)
            for t, sid in sched.shard_unmet_requests()
        ]
        offers = []
        for last_busy, core, owner, online in sched.shard_surplus(advance_to):
            # a core handed over at a barrier must carry no in-flight
            # state: still serving a packet or holding queued
            # descriptors disqualifies it this window
            if st.core_busy[core] or len(st.queues[core]) > 0:
                continue
            offers.append(
                CoreOffer(
                    last_busy_ns=last_busy,
                    shard=shard_id,
                    core=core,
                    service=owner,
                    online_owned=online,
                )
            )
        return {
            "exhausted": not kernel.arrivals_pending,
            "last_arrival_ns": st.last_arrival_ns,
            "requests": requests,
            "offers": offers,
        }

    # -- common ---------------------------------------------------------
    def finish(self, global_last_arrival_ns: int) -> ShardResult:
        """Drain to the global horizon and package the result."""
        report = self.kernel.finish(global_last_arrival_ns)
        metrics = self.kernel.state.metrics
        moved = (
            self.spec.mode == "cores"
            and self.kernel.scheduler.map_epoch != self._epoch0
        )
        return ShardResult(
            shard_id=self.spec.shard_id,
            report=report,
            busy_ns=list(metrics.busy_ns_per_core),
            latencies_ns=list(metrics.latencies_ns),
            last_arrival_ns=self.kernel.state.last_arrival_ns,
            map_epoch_moved=moved,
            windows=self.windows,
            grants_in=self.grants_in,
            grants_out=self.grants_out,
            service_ids=tuple(
                getattr(self.spec.source, "_services", ())
            ),
        )
