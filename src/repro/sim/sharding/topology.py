"""Shard topology: how the simulated system is cut into partitions.

Both modes use contiguous equal division with the remainder going to
the first groups — the same rule :class:`~repro.core.allocator.
CoreAllocator` uses to seed core ownership, which is what makes the
service-mode ownership below agree with what a single-process LAPS
bind would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["ShardTopology", "plan_topology"]


def _equal_division(n: int, groups: int) -> list[list[int]]:
    """Split ``range(n)`` into *groups* contiguous blocks, remainder to
    the first blocks (every block non-empty)."""
    out: list[list[int]] = []
    base, extra = divmod(n, groups)
    start = 0
    for g in range(groups):
        count = base + (1 if g < extra else 0)
        out.append(list(range(start, start + count)))
        start += count
    return out


@dataclass(frozen=True)
class ShardTopology:
    """The partition plan of one sharded run (recorded in manifests).

    ``core_groups[k]`` / ``service_groups[k]`` are the **global** core
    and service ids shard *k* starts with.  In cores mode every shard
    serves all services (its packets just happen to target its core
    group); in services mode the core groups are the initial ownership
    — donation moves cores between shards at runtime.
    """

    mode: str  # "cores" | "services"
    num_shards: int
    num_cores: int
    num_services: int
    core_groups: tuple[tuple[int, ...], ...]
    service_groups: tuple[tuple[int, ...], ...]
    window_ns: int | None = None

    def ownership(self, shard_id: int) -> list[int]:
        """Service-mode preset ownership for one shard: global core id
        -> **local** service id, or ``-1`` for foreign cores."""
        local_of = {
            sid: local for local, sid in enumerate(self.service_groups[shard_id])
        }
        owners = [-1] * self.num_cores
        svc_blocks = _equal_division(self.num_cores, self.num_services)
        for sid, cores in enumerate(svc_blocks):
            local = local_of.get(sid)
            if local is not None:
                for core in cores:
                    owners[core] = local
        return owners

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "num_shards": self.num_shards,
            "num_cores": self.num_cores,
            "num_services": self.num_services,
            "core_groups": [list(g) for g in self.core_groups],
            "service_groups": [list(g) for g in self.service_groups],
            "window_ns": self.window_ns,
        }


def plan_topology(
    mode: str,
    shards: int,
    num_cores: int,
    num_services: int,
    window_ns: int | None = None,
) -> ShardTopology:
    """Cut *num_cores* x *num_services* into *shards* partitions."""
    if shards < 1:
        raise ConfigError(f"need at least one shard, got {shards}")
    if mode == "cores":
        if shards > num_cores:
            raise ConfigError(
                f"{shards} shards cannot partition {num_cores} cores"
            )
        core_groups = _equal_division(num_cores, shards)
        service_groups = [list(range(num_services))] * shards
    elif mode == "services":
        if shards > num_services:
            raise ConfigError(
                f"{shards} shards cannot partition {num_services} services"
            )
        service_groups = _equal_division(num_services, shards)
        # initial core ownership: the allocator's global equal division
        # of cores among services, grouped by the shard owning each
        # service — so shard boundaries land exactly on the single-
        # process initial allocation
        svc_blocks = _equal_division(num_cores, num_services)
        core_groups = [
            [core for sid in group for core in svc_blocks[sid]]
            for group in service_groups
        ]
        if any(not g for g in core_groups):
            raise ConfigError(
                f"{num_cores} cores over {num_services} services leave "
                "a shard with no cores"
            )
    else:
        raise ConfigError(f"unknown shard mode {mode!r}")
    return ShardTopology(
        mode=mode,
        num_shards=shards,
        num_cores=num_cores,
        num_services=num_services,
        core_groups=tuple(tuple(g) for g in core_groups),
        service_groups=tuple(tuple(g) for g in service_groups),
        window_ns=window_ns,
    )
