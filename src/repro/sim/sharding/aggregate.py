"""Exact aggregation of per-shard results into one ``SimReport``.

The merge mirrors :meth:`repro.sim.metrics.SimMetrics.finalize`
computation-for-computation so a cores-mode sharded run reproduces the
single-process report *bit for bit*:

* counters sum (shards count disjoint packet sets);
* per-core busy nanoseconds sum elementwise as integers, then become
  utilisation against the merged observed horizon — ``max`` over the
  shards' own ``observed_ns``, which equals the single-process
  ``max(duration, last_depart)`` because the global last departure
  happened in exactly one shard;
* latencies are integer nanoseconds: their float64 sum is exact below
  2**53 (every partial sum is an integer), so the merged mean is
  order-independent, and the percentiles sort, so only the multiset
  matters — concatenation order is irrelevant;
* ``departures``/``drop_records`` concatenate and sort into canonical
  ``(flow, seq, t)`` order.  This is the one field where the sharded
  report is canonicalised rather than byte-ordered like the
  single-process egress interleaving (same multiset, sorted order);
  ``record_departures`` defaults off, so ordinary reports are
  unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.metrics import SimReport
from repro.sim.sharding.shard import ShardResult
from repro.sim.sharding.topology import ShardTopology
from repro.util.stats import summarize

__all__ = ["merge_shard_results"]


def merge_shard_results(
    results: list[ShardResult],
    topology: ShardTopology,
) -> SimReport:
    """Fold per-shard results into the system-wide report."""
    if not results:
        raise SimulationError("no shard results to merge")
    results = sorted(results, key=lambda r: r.shard_id)
    first = results[0].report
    num_cores = topology.num_cores
    num_services = topology.num_services

    busy = [0] * num_cores
    gen_svc = [0] * num_services
    drop_svc = [0] * num_services
    stats: dict[str, float] = {}
    latencies: list[int] = []
    departures: list[tuple[int, int, int]] = []
    drop_records: list[tuple[int, int, int]] = []
    generated = dropped = departed = out_of_order = 0
    cold = migrations = migrated_flows = fault_dropped = 0
    observed_ns = 0

    for res in results:
        rep = res.report
        if len(res.busy_ns) != num_cores:
            raise SimulationError(
                f"shard {res.shard_id} reports {len(res.busy_ns)} cores, "
                f"topology says {num_cores}"
            )
        for c, b in enumerate(res.busy_ns):
            busy[c] += b
        if topology.mode == "cores":
            # every shard sees the full (global) service list
            for s in range(num_services):
                gen_svc[s] += rep.generated_per_service[s]
                drop_svc[s] += rep.dropped_per_service[s]
        else:
            # local service s of shard k is global service_groups[k][s]
            group = topology.service_groups[res.shard_id]
            for s, sid in enumerate(group):
                gen_svc[sid] += rep.generated_per_service[s]
                drop_svc[sid] += rep.dropped_per_service[s]
        for key, val in rep.scheduler_stats.items():
            stats[key] = stats.get(key, 0) + val
        latencies.extend(res.latencies_ns)
        departures.extend(rep.departures)
        drop_records.extend(rep.drop_records)
        generated += rep.generated
        dropped += rep.dropped
        departed += rep.departed
        out_of_order += rep.out_of_order
        cold += rep.cold_cache_events
        migrations += rep.flow_migration_events
        migrated_flows += rep.migrated_flows
        fault_dropped += rep.fault_dropped
        observed_ns = max(observed_ns, rep.observed_ns)

    util = [
        b / observed_ns if observed_ns > 0 else 0.0 for b in busy
    ]
    lat = (
        summarize(np.asarray(latencies, dtype=np.int64))
        if latencies
        else {k: 0.0 for k in ("mean", "min", "max", "p50", "p95", "p99")}
    )
    return SimReport(
        scheduler=first.scheduler,
        duration_ns=first.duration_ns,
        observed_ns=observed_ns,
        generated=generated,
        dropped=dropped,
        departed=departed,
        out_of_order=out_of_order,
        cold_cache_events=cold,
        flow_migration_events=migrations,
        migrated_flows=migrated_flows,
        generated_per_service=tuple(gen_svc),
        dropped_per_service=tuple(drop_svc),
        core_utilization=tuple(util),
        latency_ns=lat,
        scheduler_stats=stats,
        departures=tuple(sorted(departures)),
        drop_records=tuple(sorted(drop_records)),
        fault_dropped=fault_dropped,
    )
