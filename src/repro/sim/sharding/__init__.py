"""Sharded multiprocess simulation (conservative-time PDES).

The simulated system is cut into :class:`~repro.sim.sharding.shard.Shard`
partitions — each owning a full :class:`~repro.sim.kernel.SimKernel`
over a filtered clone of the packet source — and advanced by the
:func:`~repro.sim.sharding.coordinator.run_sharded` coordinator over
persistent spawn-context workers.  Two partitioning modes exist:

* **cores** — the core space is partitioned and each shard replays the
  exact packets a single-process run would route into its core group.
  Only statically-mapped schedulers (``shard_static``) qualify; the
  result is **bit-identical** to the single-process report.
* **services** — the service space is partitioned (LAPS); shards march
  in conservative time windows and exchange ``request_core()``
  donations through a mailbox resolved at window barriers.  The result
  is deterministic for a fixed (seed, window_ns, shard count) but not
  identical to a single-process run (donation decisions see
  window-granular, per-shard load).

See ``docs/architecture.md`` ("Sharded execution") for the protocol.
"""

from repro.sim.sharding.aggregate import merge_shard_results
from repro.sim.sharding.coordinator import ShardedRun, run_sharded
from repro.sim.sharding.mailbox import (
    CoreGrant,
    CoreOffer,
    CoreRequest,
    resolve_grants,
)
from repro.sim.sharding.partition import (
    CorePartitionSource,
    ServiceFilterSource,
)
from repro.sim.sharding.shard import Shard, ShardResult, ShardSpec
from repro.sim.sharding.topology import ShardTopology, plan_topology

__all__ = [
    "run_sharded",
    "ShardedRun",
    "Shard",
    "ShardSpec",
    "ShardResult",
    "ShardTopology",
    "plan_topology",
    "CorePartitionSource",
    "ServiceFilterSource",
    "CoreRequest",
    "CoreOffer",
    "CoreGrant",
    "resolve_grants",
    "merge_shard_results",
]
