"""Cross-shard mailbox: the only coupling between service shards.

At each window barrier every shard reports the ``request_core()``
denials its services accumulated (one per service, earliest first) and
offers the surplus cores it could donate.  :func:`resolve_grants`
matches them globally with the same preferences the single-process
allocator uses — earliest request first, longest-quiet core first —
under the usual donor guards.  The matching is a pure function of the
sorted inputs, which is what makes a sharded LAPS run deterministic
for a fixed (seed, window, shard count) regardless of worker count or
scheduling jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CoreRequest", "CoreOffer", "CoreGrant", "resolve_grants"]


@dataclass(frozen=True, slots=True)
class CoreRequest:
    """A service's unmet ``request_core`` (earliest denial in the
    window; ``service`` is shard-local)."""

    t_ns: int
    shard: int
    service: int


@dataclass(frozen=True, slots=True)
class CoreOffer:
    """A donatable surplus core.  ``service`` is the donor's local
    service id; ``online_owned`` is how many online cores that service
    holds (donor budget — it must keep at least two to give one)."""

    last_busy_ns: int
    shard: int
    core: int
    service: int
    online_owned: int


@dataclass(frozen=True, slots=True)
class CoreGrant:
    """A resolved transfer: ``core`` moves from the donor shard's map
    tables into the recipient shard's at the barrier."""

    core: int
    donor_shard: int
    donor_service: int
    recipient_shard: int
    recipient_service: int


def resolve_grants(
    requests: list[CoreRequest],
    offers: list[CoreOffer],
) -> list[CoreGrant]:
    """Match requests to offers; at most one grant per (shard, service)
    per barrier, a donor service always keeps at least one online core
    (the allocator's guard), and a shard never
    "donates" to itself (its own surplus was already reachable through
    the local allocator during the window)."""
    pending = sorted(requests, key=lambda r: (r.t_ns, r.shard, r.service))
    pool = sorted(offers, key=lambda o: (o.last_busy_ns, o.shard, o.core))
    budget: dict[tuple[int, int], int] = {}
    for o in pool:
        budget.setdefault((o.shard, o.service), o.online_owned)
    taken: set[int] = set()
    granted: set[tuple[int, int]] = set()
    out: list[CoreGrant] = []
    for req in pending:
        key = (req.shard, req.service)
        if key in granted:
            continue
        for offer in pool:
            if offer.core in taken or offer.shard == req.shard:
                continue
            if budget[(offer.shard, offer.service)] < 2:
                # the allocator's donor guard: a service is never
                # stripped of its last online core
                continue
            budget[(offer.shard, offer.service)] -= 1
            taken.add(offer.core)
            granted.add(key)
            out.append(
                CoreGrant(
                    core=offer.core,
                    donor_shard=offer.shard,
                    donor_service=offer.service,
                    recipient_shard=req.shard,
                    recipient_service=req.service,
                )
            )
            break
    return out
