"""The sharded-run coordinator: conservative-time PDES over a
persistent worker pool.

:func:`run_sharded` cuts the system with :func:`~repro.sim.sharding.
topology.plan_topology`, ships one picklable
:class:`~repro.sim.sharding.shard.ShardSpec` per shard to a sticky
worker slot (shard state *lives in the worker* between calls — every
window goes back to the process holding the kernel), drives the
mode-appropriate protocol, and merges the per-shard results exactly.

**Cores mode** needs a single barrier: shards share no state at all, so
each dispatches every arrival independently (``run_arrivals``), the
coordinator takes the max last-arrival instant, and every shard drains
against that global horizon (``finish``) so departures are scored over
the same window a single-process run uses.

**Services mode** (LAPS) advances all shards window by window.  The
only inter-shard coupling — ``request_core()`` spilling across the
service partition — is deferred to window barriers: each
``window_step`` returns the shard's unmet requests and donatable
surplus cores, :func:`~repro.sim.sharding.mailbox.resolve_grants`
matches them globally, and the outcome is applied at the next barrier
before any further simulated time passes.  Fault routing: *platform*
events (core fail/recover/slowdown, global core ids) are broadcast to
every shard — only the owning shard's allocator reacts beyond marking
the core; *traffic* events are applied to the full source **before**
partitioning, so each shard's slice is cut from the already-transformed
stream.
"""

from __future__ import annotations

import copy
import itertools
import os
from dataclasses import dataclass
from dataclasses import replace as dc_replace

from repro import units
from repro.errors import ConfigError, SimulationError
from repro.faults import DRAIN_POLICIES, FaultSchedule, TrafficTransformSource
from repro.net.service import ServiceSet
from repro.sim.config import SimConfig
from repro.sim.metrics import SimReport
from repro.sim.sharding.aggregate import merge_shard_results
from repro.sim.sharding.mailbox import CoreGrant, resolve_grants
from repro.sim.sharding.partition import CorePartitionSource, ServiceFilterSource
from repro.sim.sharding.shard import Shard, ShardSpec
from repro.sim.sharding.topology import ShardTopology, plan_topology
from repro.sim.source import MaterializedSource, PacketSource
from repro.sim.workload import Workload
from repro.util.parallel import default_jobs, in_pool_worker, shared_pool

__all__ = ["ShardedRun", "run_sharded", "DEFAULT_WINDOW_NS"]

#: services-mode barrier interval when the caller does not pick one:
#: 1 ms of simulated time — two orders of magnitude above per-packet
#: service times (so barrier overhead amortises) yet short against the
#: idle threshold that makes cores donatable
DEFAULT_WINDOW_NS = units.ms(1)

#: tokens distinguishing one run's resident shards from a previous
#: run's in the same (reused) worker processes
_TOKENS = itertools.count()


# ----------------------------------------------------------------------
# worker-side entry points (module-level: they must pickle by name).
# A worker keeps its shards in this registry between calls; entries of
# an older run are evicted the first time a new run builds into it.
# ----------------------------------------------------------------------
_RESIDENT: dict[tuple[str, int], Shard] = {}


def _w_build(arg) -> int:
    token, spec = arg
    for key in [k for k in _RESIDENT if k[0] != token]:
        del _RESIDENT[key]
    _RESIDENT[(token, spec.shard_id)] = Shard(spec)
    return spec.shard_id


def _w_call(arg):
    token, shard_id, method, payload = arg
    shard = _RESIDENT.get((token, shard_id))
    if shard is None:
        raise SimulationError(
            f"shard {shard_id} is not resident in this worker — the "
            "pool was resized or restarted mid-run"
        )
    return getattr(shard, method)(payload)


# ----------------------------------------------------------------------
class _InlineBackend:
    """All shards in this process (workers=1, or nested in a pool
    worker, where spawning children is impossible)."""

    def __init__(self, specs: list[ShardSpec]) -> None:
        self._specs = specs
        self._shards: list[Shard] = []

    def build(self) -> None:
        self._shards = [Shard(s) for s in self._specs]

    def call_all(self, method: str, payloads: list) -> list:
        return [
            getattr(shard, method)(p)
            for shard, p in zip(self._shards, payloads)
        ]


class _PoolBackend:
    """Shards resident in persistent pool workers, slot ``shard_id %
    workers`` — the sticky routing :meth:`ProcessPool.scatter`
    guarantees is what keeps every window call landing on the process
    that holds the shard's kernel."""

    def __init__(self, specs: list[ShardSpec], workers: int) -> None:
        self._specs = specs
        self._pool = shared_pool(workers)
        self._token = f"{os.getpid()}:{next(_TOKENS)}"

    def build(self) -> None:
        self._pool.scatter(
            [(s.shard_id, _w_build, (self._token, s)) for s in self._specs]
        )

    def call_all(self, method: str, payloads: list) -> list:
        return self._pool.scatter(
            [
                (s.shard_id, _w_call, (self._token, s.shard_id, method, p))
                for s, p in zip(self._specs, payloads)
            ]
        )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardedRun:
    """Everything a sharded run produced: the merged report plus the
    partition plan and protocol trace the manifest records."""

    report: SimReport
    topology: ShardTopology
    shard_reports: tuple[SimReport, ...]
    windows: int = 0
    grants: tuple[CoreGrant, ...] = ()
    workers: int = 1
    source_fingerprint: str | None = None

    def manifest_dict(self) -> dict:
        """The ``sharding`` block of a :class:`~repro.obs.manifest.
        RunManifest`."""
        out = self.topology.to_dict()
        out["workers"] = self.workers
        out["windows"] = self.windows
        out["cross_shard_grants"] = len(self.grants)
        if self.source_fingerprint is not None:
            out["source_fingerprint"] = self.source_fingerprint
        return out


# ----------------------------------------------------------------------
def _select_mode(scheduler) -> str:
    if hasattr(scheduler, "configure_shard"):
        return "services"
    if getattr(scheduler, "shard_static", False):
        return "cores"
    raise SimulationError(
        f"scheduler {scheduler.name!r} supports neither sharding mode: "
        "cores mode needs a statically partitionable assignment "
        "(shard_static), services mode needs the configure_shard "
        "window/mailbox protocol (LAPS).  Schedulers whose decisions "
        "read global load (fcfs, flowlet, sprinklers, adaptive-hash) "
        "or fall back to global occupancy behind a batch guard (afs, "
        "flow-director) cannot be partitioned without changing their "
        "results — run them single-process."
    )


def run_sharded(
    workload: Workload | PacketSource,
    scheduler,
    config: SimConfig | None = None,
    *,
    shards: int,
    workers: int = 0,
    window_ns: int | None = None,
    schedule: FaultSchedule | None = None,
    drain_policy: str = "drop",
    engine: str | None = None,
    vectorized: bool = True,
    source_fingerprint: str | None = None,
) -> ShardedRun:
    """Run one simulation sharded *shards* ways across worker processes.

    *workers* bounds the process count (0 = ``default_jobs()``, itself
    overridable with ``REPRO_JOBS``); shards beyond the worker count
    time-share slots.  The outcome is worker-count independent: cores
    mode is bit-identical to ``simulate()`` for any shard count, and
    services mode is a deterministic function of (workload seed,
    *window_ns*, *shards*).

    *schedule* may carry both event kinds: traffic events transform the
    source before partitioning; platform events are broadcast to every
    shard.  Platform events force ``drain_policy="drop"`` — the
    reassign policy re-routes a dead core's queue through the live map,
    which in cores mode crosses the partition.

    *source_fingerprint*, when the caller has already computed it (the
    batch harness shares one fingerprint across a shard group), is
    recorded on the result; it is never recomputed here.
    """
    config = config or SimConfig()
    if shards < 1:
        raise ConfigError(f"need at least one shard, got {shards}")
    if drain_policy not in DRAIN_POLICIES:
        raise ConfigError(
            f"unknown drain policy {drain_policy!r}; "
            f"choose from {', '.join(DRAIN_POLICIES)}"
        )
    if getattr(scheduler, "is_bound", False):
        raise ConfigError(
            "run_sharded needs an unbound scheduler (each shard binds "
            "its own deep copy)"
        )

    if isinstance(workload, Workload):
        inner: PacketSource = MaterializedSource(workload)
    elif isinstance(workload, PacketSource):
        inner = workload.clone()
    else:
        raise ConfigError(
            f"workload must be a Workload or PacketSource, "
            f"got {type(workload).__name__}"
        )
    num_services = len(config.services)
    if inner.num_services > num_services:
        raise ConfigError(
            f"workload uses {inner.num_services} services but the "
            f"config defines only {num_services}"
        )

    platform_schedule: FaultSchedule | None = None
    if schedule is not None and len(schedule):
        schedule.validate_platform(config.num_cores, num_services)
        traffic = schedule.traffic_events()
        if traffic:
            inner = TrafficTransformSource(inner, FaultSchedule(traffic))
        platform = [ev for ev in schedule.events if ev.kind == "platform"]
        if platform:
            if drain_policy != "drop":
                raise ConfigError(
                    "sharded runs with platform fault events require "
                    "drain_policy='drop': the reassign policy re-routes "
                    "a failed core's queue across the partition"
                )
            platform_schedule = FaultSchedule(platform)

    mode = _select_mode(scheduler)
    window = window_ns if window_ns is not None else DEFAULT_WINDOW_NS
    if window_ns is not None and window_ns <= 0:
        raise ConfigError(f"window_ns must be positive, got {window_ns}")
    topology = plan_topology(
        mode,
        shards,
        config.num_cores,
        num_services,
        window_ns=window if mode == "services" else None,
    )
    if mode == "services":
        sched_services = getattr(
            getattr(scheduler, "config", None), "num_services", None
        )
        if sched_services is not None and sched_services != num_services:
            raise ConfigError(
                f"scheduler is configured for {sched_services} services "
                f"but the platform defines {num_services}"
            )

    specs: list[ShardSpec] = []
    for k in range(shards):
        sched_k = copy.deepcopy(scheduler)
        if mode == "cores":
            cfg_k = config
            src_k: PacketSource = CorePartitionSource(
                inner.clone(),
                scheduler,
                topology.core_groups[k],
                config.num_cores,
                config.queue_capacity,
            )
        else:
            group = topology.service_groups[k]
            local = ServiceSet(
                [
                    dc_replace(config.services[sid], service_id=i)
                    for i, sid in enumerate(group)
                ]
            )
            cfg_k = dc_replace(config, services=local)
            sched_k.configure_shard(len(group), topology.ownership(k))
            src_k = ServiceFilterSource(inner.clone(), group)
        specs.append(
            ShardSpec(
                shard_id=k,
                mode=mode,
                config=cfg_k,
                source=src_k,
                scheduler=sched_k,
                platform_schedule=platform_schedule,
                drain_policy=drain_policy,
                engine=engine,
                vectorized=vectorized,
            )
        )

    n_workers = workers if workers > 0 else default_jobs()
    n_workers = min(n_workers, shards)
    if n_workers <= 1 or in_pool_worker():
        n_workers = 1
        backend = _InlineBackend(specs)
    else:
        backend = _PoolBackend(specs, n_workers)
    backend.build()

    grants: list[CoreGrant] = []
    windows_run = 0
    if mode == "cores":
        lasts = backend.call_all("run_arrivals", [None] * shards)
        global_last = max(lasts)
    else:
        barrier = 0
        revokes: dict[int, list[int]] = {k: [] for k in range(shards)}
        adopts: dict[int, list[tuple[int, int]]] = {k: [] for k in range(shards)}
        lasts = [0] * shards
        while True:
            advance_to = barrier + window
            payloads = [
                (barrier, revokes[k], adopts[k], advance_to)
                for k in range(shards)
            ]
            outs = backend.call_all("window_step", payloads)
            windows_run += 1
            lasts = [o["last_arrival_ns"] for o in outs]
            if all(o["exhausted"] for o in outs):
                break
            new = resolve_grants(
                [r for o in outs for r in o["requests"]],
                [of for o in outs for of in o["offers"]],
            )
            grants.extend(new)
            revokes = {k: [] for k in range(shards)}
            adopts = {k: [] for k in range(shards)}
            for g in new:
                revokes[g.donor_shard].append(g.core)
                adopts[g.recipient_shard].append(
                    (g.core, g.recipient_service)
                )
            barrier = advance_to
        global_last = max(lasts)

    results = backend.call_all("finish", [global_last] * shards)

    total = sum(r.report.generated for r in results)
    if total != inner.num_packets:
        raise SimulationError(
            f"sharded run dispatched {total} packets of "
            f"{inner.num_packets} — the partition is not an exact cover"
        )
    if mode == "cores":
        moved = [r.shard_id for r in results if r.map_epoch_moved]
        if moved:
            raise SimulationError(
                f"shards {moved} mutated their map tables at runtime — "
                "the static core partition no longer matches the "
                "scheduler's routing (cross-shard coupling detected)"
            )

    report = merge_shard_results(results, topology)
    return ShardedRun(
        report=report,
        topology=topology,
        shard_reports=tuple(r.report for r in sorted(results, key=lambda r: r.shard_id)),
        windows=windows_run,
        grants=tuple(grants),
        workers=n_workers,
        source_fingerprint=source_fingerprint,
    )
