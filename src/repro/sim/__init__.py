"""Discrete-event simulation substrate (the SpecC simulator stand-in,
paper Sec. IV, Fig. 6).

Components mirror the paper's infrastructure: a packet generator paced
by the Holt-Winters traffic model (eq. 1-2) drawing headers from traces,
the scheduler under test, per-core bounded input queues (32 descriptors),
core models applying the processing-delay model of eq. 3-5, and an
egress reorder detector.
"""

from repro.sim.engine import EventQueue
from repro.sim.hooks import HookBus, HOOK_EVENTS
from repro.sim.kernel import Checkpoint, SimKernel, SimState
from repro.sim.queues import BoundedQueue, QueueBank
from repro.sim.latency import CoreConfig, LatencyModel, TABLE_III_CORE
from repro.sim.reorder import ReorderDetector
from repro.sim.metrics import SimMetrics, SimReport
from repro.sim.generator import ArrivalStream, HoltWinters, HoltWintersParams, arrival_times
from repro.sim.workload import Workload, build_workload, service_flow_hashes
from repro.sim.source import (
    DEFAULT_CHUNK_SIZE,
    MaterializedSource,
    PacketSource,
    StreamingSource,
    WorkloadChunk,
    workload_fingerprint,
)
from repro.sim.config import SimConfig
from repro.sim.system import NetworkProcessorSim, simulate
from repro.sim.restoration import RestorationBuffer, RestorationResult, restoration_cost
from repro.sim.power import PowerModel, PowerReport
from repro.sim.probes import QueueProbe

__all__ = [
    "EventQueue",
    "HookBus",
    "HOOK_EVENTS",
    "Checkpoint",
    "SimKernel",
    "SimState",
    "BoundedQueue",
    "QueueBank",
    "CoreConfig",
    "LatencyModel",
    "TABLE_III_CORE",
    "ReorderDetector",
    "SimMetrics",
    "SimReport",
    "ArrivalStream",
    "HoltWinters",
    "HoltWintersParams",
    "arrival_times",
    "Workload",
    "build_workload",
    "service_flow_hashes",
    "DEFAULT_CHUNK_SIZE",
    "PacketSource",
    "WorkloadChunk",
    "MaterializedSource",
    "StreamingSource",
    "workload_fingerprint",
    "SimConfig",
    "NetworkProcessorSim",
    "simulate",
    "RestorationBuffer",
    "RestorationResult",
    "restoration_cost",
    "PowerModel",
    "PowerReport",
    "QueueProbe",
]
