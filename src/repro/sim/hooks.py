"""The unified hook bus: one registration point for everything that
observes or perturbs a run.

Probes, fault injectors and scheduler callbacks used to attach through
bespoke side channels (``probe.bind(sim)`` plus per-arrival ``if probe``
checks, ``injector.bind(sim)`` poking attributes onto the simulator,
direct ``sched.on_queue_empty`` calls).  The :class:`HookBus` replaces
all of them with named events:

===================== =================================================
event                 fired when
===================== =================================================
``queue_empty``       a core's input queue drained (idle-timer edge)
``queue_busy``        a core's input queue went non-empty again
``core_down``         a core failed (:mod:`repro.faults`)
``core_up``           a failed core recovered
``sample``            simulated time crossed an observation boundary
``timed_event``       a non-completion payload surfaced from the heap
===================== =================================================

The kernel's hot loop never iterates subscriber lists: at activation it
asks :meth:`dispatcher` for a pre-compiled callable per event — ``None``
for zero subscribers (the kernel skips the call entirely), the bound
callback itself for exactly one (the common case: a single scheduler,
a single probe — zero overhead over the old direct call), and a small
fan-out closure only when several hooks share an event.  After the
first dispatcher is built the bus freezes; late subscriptions would be
silently invisible to the already-compiled hot loop, so they raise.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError, SimulationError

__all__ = ["HOOK_EVENTS", "HookBus"]

#: the closed set of events a :class:`~repro.sim.kernel.SimKernel` emits
HOOK_EVENTS = (
    "queue_empty",
    "queue_busy",
    "core_down",
    "core_up",
    "sample",
    "timed_event",
)


class HookBus:
    """Named-event registry with pre-compiled dispatch."""

    __slots__ = ("_subs", "_frozen", "sample_period_ns")

    def __init__(self) -> None:
        self._subs: dict[str, list[Callable]] = {e: [] for e in HOOK_EVENTS}
        self._frozen = False
        #: finest requested ``sample`` period (None until a periodic
        #: subscriber registers); the kernel steps the drain phase at
        #: this grain so time series keep covering late departures
        self.sample_period_ns: int | None = None

    # ------------------------------------------------------------------
    def subscribe(
        self, event: str, fn: Callable, *, period_ns: int | None = None
    ) -> None:
        """Register *fn* for *event* (before the run starts).

        ``period_ns`` is meaningful only for ``sample`` subscribers: the
        bus tracks the finest period so the kernel can pace its drain
        phase to match.
        """
        if event not in self._subs:
            raise ConfigError(
                f"unknown hook event {event!r}; choose from {', '.join(HOOK_EVENTS)}"
            )
        if self._frozen:
            raise SimulationError(
                f"hook bus is frozen (the run already started); "
                f"cannot subscribe to {event!r}"
            )
        self._subs[event].append(fn)
        if period_ns is not None:
            if event != "sample":
                raise ConfigError("period_ns applies to 'sample' subscribers only")
            if period_ns <= 0:
                raise ConfigError(f"period_ns must be positive, got {period_ns}")
            if self.sample_period_ns is None or period_ns < self.sample_period_ns:
                self.sample_period_ns = period_ns

    def callbacks(self, event: str) -> tuple[Callable, ...]:
        """Snapshot of the subscribers of *event* (registration order)."""
        return tuple(self._subs[event])

    def has(self, event: str) -> bool:
        return bool(self._subs[event])

    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Reject further subscriptions (called once at kernel start)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    def dispatcher(self, event: str) -> Callable | None:
        """A pre-compiled emitter for *event*, or None when unsubscribed.

        Zero subscribers → ``None`` (callers skip the call); one → the
        callback itself (no wrapping, same cost as a direct method
        call); several → a closure fanning out in registration order.
        """
        cbs = tuple(self._subs[event])
        if not cbs:
            return None
        if len(cbs) == 1:
            return cbs[0]

        def fan_out(*args, _cbs=cbs):
            for cb in _cbs:
                cb(*args)

        return fan_out

    def emit(self, event: str, *args) -> None:
        """Call every subscriber of *event* (slow path, for rare events
        like ``core_down``; the hot loop uses :meth:`dispatcher`)."""
        for cb in self._subs[event]:
            cb(*args)
