"""Exception hierarchy for the ``repro`` package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceError",
    "TraceFormatError",
    "SimulationError",
    "SchedulerError",
    "CapacityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class TraceError(ReproError):
    """Base class for trace-related failures."""


class TraceFormatError(TraceError, ValueError):
    """A trace file or byte stream does not conform to its format."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulerError(ReproError, RuntimeError):
    """A scheduler was driven through an invalid sequence of operations."""


class CapacityError(ReproError, RuntimeError):
    """A resource request exceeded available capacity (e.g. no free core)."""
