#!/usr/bin/env python
"""Queue dynamics over time: watching the load balancer work.

Attaches a :class:`repro.QueueProbe` to two runs — static hash (no
balancing) vs LAPS — and prints the per-core queue *imbalance*
(max−min occupancy) and drop rate over time.  Static hash shows a
persistent spread (the elephant cores pinned at the queue limit while
others idle); LAPS collapses the spread shortly after the AFD warms up.

Also demonstrates the order-restoration post-analysis: how much egress
buffering would FCFS's reordering require (the Sec. VI alternative the
paper argues against)?

Run:  python examples/queue_dynamics.py
"""

import numpy as np

from repro import (
    HoltWintersParams,
    LAPSConfig,
    LAPSScheduler,
    QueueProbe,
    Service,
    ServiceSet,
    SimConfig,
    build_workload,
    make_scheduler,
    preset_trace,
    restoration_cost,
    simulate,
    units,
)
from repro.util.tables import format_table


def main() -> None:
    trace = preset_trace("caida-1", num_packets=100_000)
    service = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    config = SimConfig(num_cores=16, services=service, collect_latencies=False)
    capacity = service.capacity_pps([16], mean_size_bytes=348)
    workload = build_workload(
        [trace], [HoltWintersParams(a=1.0 * capacity)],
        duration_ns=units.ms(10), seed=11,
    )

    period = units.ms(1)
    probes = {}
    for name, sched in (
        ("hash-static", make_scheduler("hash-static")),
        ("laps", LAPSScheduler(LAPSConfig(num_services=1), rng=1)),
    ):
        probe = QueueProbe(period)
        simulate(workload, sched, config, probe=probe)
        probes[name] = probe

    rows = []
    n = min(p.num_samples for p in probes.values())
    for i in range(n):
        rows.append([
            f"{probes['hash-static'].times_ns[i] / 1e6:.0f}",
            int(probes["hash-static"].imbalance_series()[i]),
            int(probes["hash-static"].drop_rate_series()[i]),
            int(probes["laps"].imbalance_series()[i]),
            int(probes["laps"].drop_rate_series()[i]),
        ])
    print(format_table(
        ["t (ms)", "hash spread", "hash drops/ms", "laps spread", "laps drops/ms"],
        rows,
        title="Queue imbalance and drop rate over time (16 cores, 100% load)",
    ))

    mean_spread = {
        name: float(np.mean(p.imbalance_series())) for name, p in probes.items()
    }
    print(f"\nmean queue spread: hash-static {mean_spread['hash-static']:.1f} "
          f"vs laps {mean_spread['laps']:.1f} descriptors")

    # --- order restoration: what would fixing FCFS at egress cost? ---
    rec_config = SimConfig(num_cores=16, services=service,
                           collect_latencies=False, record_departures=True)
    fcfs = simulate(workload, make_scheduler("fcfs"), rec_config)
    full = restoration_cost(fcfs.departures, drops=fcfs.drop_records)
    bounded = restoration_cost(fcfs.departures, capacity=64,
                               drops=fcfs.drop_records)
    print(f"\nFCFS reordered {fcfs.out_of_order} packets; an egress "
          f"re-sequencer needs {full.max_occupancy} descriptors to fix that "
          f"fully (64 descriptors leak {bounded.residual_out_of_order}).")
    print(f"But restoration fixes only the ordering: FCFS still dropped "
          f"{fcfs.drop_fraction:.0%} of packets to flow-migration and "
          f"cold-cache penalties, which no egress buffer recovers -- the "
          f"paper's argument for preserving order (and locality) upstream.")


if __name__ == "__main__":
    main()
