#!/usr/bin/env python
"""Standalone Aggressive Flow Detector: find the elephants in a trace.

Feeds a trace through the two-level AFD (annex cache -> AFC) and
through Lu et al.'s single-cache ElephantTrap, scoring both against the
exact offline top-16.  Also shows the Fig. 8(c) sampling effect: the
detector keeps (or improves) its accuracy while looking at only a
fraction of the packets.

Run:  python examples/elephant_detection.py
"""

from repro import AFDConfig, AggressiveFlowDetector, preset_trace, top_k_flows
from repro.schedulers.elephant_trap import ElephantTrap
from repro.util.tables import format_table


def feed(detector, trace) -> None:
    observe = detector.observe
    for fid in trace.flow_id:
        observe(int(fid))


def main() -> None:
    rows = []
    for name in ("caida-1", "caida-2", "auck-1", "auck-2"):
        trace = preset_trace(name)
        truth16 = set(top_k_flows(trace, 16, by="bytes"))
        truth20 = set(top_k_flows(trace, 20, by="bytes"))

        afd = AggressiveFlowDetector(AFDConfig(annex_entries=512), rng=0)
        feed(afd, trace)

        trap = ElephantTrap(entries=16, rng=0)
        feed(trap, trace)

        sampled = AggressiveFlowDetector(
            AFDConfig(annex_entries=512, sample_prob=0.01), rng=0
        )
        feed(sampled, trace)

        rows.append([
            name,
            f"{afd.accuracy(truth16):.1%}",
            f"{afd.accuracy(truth20):.1%}",
            f"{trap.accuracy(truth16):.1%}",
            f"{sampled.accuracy(truth16):.1%}",
            f"{sampled.sampled}/{sampled.observed}",
        ])

    print(format_table(
        ["trace", "AFD top-16", "AFD vs top-20", "single-cache", "AFD @ p=1%",
         "packets seen"],
        rows,
        title="Aggressive Flow Detector accuracy (16-entry AFC, 512-entry annex)",
    ))
    print()
    print("Reading the table:")
    print(" * 'AFD vs top-20': the paper notes its few Caida false positives")
    print("   are rank-17..20 flows - scoring against the top-20 absolves them.")
    print(" * the single LFU cache (no annex) admits mice and scores worse.")
    print(" * at 1% sampling the AFD still finds the elephants (Fig. 8c).")


if __name__ == "__main__":
    main()
