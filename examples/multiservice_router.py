#!/usr/bin/env python
"""A multi-service edge router with shifting per-service demand.

Models the paper's Fig. 5 router: the task graph is built explicitly,
collapsed into the four services (VPN-out, IP-forward, malware-scan,
VPN-in+scan), and driven with out-of-phase seasonal traffic so services
peak at different times.  LAPS partitions the 16 cores per service
(I-cache locality) and moves cores between services as demand shifts;
FCFS and AFS mix services on every core and pay cold-cache penalties on
roughly half their packets.

Run:  python examples/multiservice_router.py
"""

from repro import (
    AFSScheduler,
    HoltWintersParams,
    LAPSConfig,
    LAPSScheduler,
    SimConfig,
    build_edge_router_graph,
    build_workload,
    make_scheduler,
    preset_trace,
    services_from_graph,
    simulate,
    units,
)
from repro.util.tables import format_table


def main() -> None:
    # 1. the router: Fig. 5's task graph, collapsed into services
    graph = build_edge_router_graph()
    services = services_from_graph(graph)
    print("services (from the task graph):")
    for svc in services:
        path = " -> ".join(graph.paths[svc.name])
        print(f"  S{svc.service_id + 1} {svc.name:13s} {path}"
              f"  (T_proc base {svc.base_ns / 1e3:.2f} us)")
    print()

    # 2. one trace per service, out-of-phase seasonal demand peaking at
    #    ~1.3x each service's fair-share capacity
    traces = [preset_trace(n, num_packets=60_000)
              for n in ("caida-1", "caida-2", "auck-1", "auck-2")]
    num_cores = 16
    per_service = num_cores // len(services)
    mean_size = 348.0
    duration = units.ms(40)
    params = []
    for i in range(len(services)):
        cap = per_service * services[i].capacity_pps(mean_size)
        params.append(HoltWintersParams(
            a=0.65 * cap,          # mean 65% of fair share...
            c=0.55 * cap,          # ...seasonally swinging 0.1x - 1.2x
            m=0.012 * (i + 1),     # out-of-phase periods
            sigma=0.05 * cap,
        ))
    workload = build_workload(traces, params, duration_ns=duration, seed=3)
    print(f"workload: {workload.num_packets} packets over 40 ms, "
          f"4 services on {num_cores} cores\n")

    # 3. compare schedulers
    config = SimConfig(num_cores=num_cores, services=services,
                       collect_latencies=False)
    rows = []
    laps_stats = None
    for name, sched in (
        ("fcfs", make_scheduler("fcfs")),
        ("afs", AFSScheduler(cooldown_ns=units.us(100))),
        ("laps", LAPSScheduler(LAPSConfig(num_services=4), rng=1)),
    ):
        rep = simulate(workload, sched, config)
        rows.append([
            name, rep.dropped, f"{rep.drop_fraction:.1%}",
            f"{rep.cold_cache_fraction:.1%}",
            rep.out_of_order, f"{rep.load_fairness:.3f}",
        ])
        if name == "laps":
            laps_stats = rep.scheduler_stats
    print(format_table(
        ["scheduler", "dropped", "drop %", "cold-cache %", "ooo", "fairness"],
        rows,
        title="Multi-service router, shifting demand (Fig. 7 setting)",
    ))
    print()
    print("LAPS dynamic core allocation:")
    for key in ("core_requests", "core_transfers", "internal_reclaims",
                "migrations_installed"):
        print(f"  {key:22s} {laps_stats[key]:.0f}")


if __name__ == "__main__":
    main()
