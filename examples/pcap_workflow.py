#!/usr/bin/env python
"""Real-capture workflow: pcap in, scheduling study out.

The paper evaluates on pcap traces (CAIDA / Auckland-II).  This example
shows the ingest path end-to-end without needing those datasets: it
synthesises a capture, *writes it as a classic pcap file*, re-ingests
it through the pcap parser (exactly what you would do with a real
capture), analyses its flow structure, and replays it through the
simulator.

Run:  python examples/pcap_workflow.py [capture.pcap[.gz]]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    HoltWintersParams,
    LAPSConfig,
    LAPSScheduler,
    Service,
    ServiceSet,
    SimConfig,
    build_workload,
    concentration,
    preset_trace,
    simulate,
    trace_from_pcap,
    units,
)
from repro.trace.pcap import write_pcap


def synthesize_capture(path: Path) -> None:
    """Materialise a synthetic trace as a real pcap file."""
    trace = preset_trace("auck-1", num_packets=20_000)
    t_ns = 0
    packets = []
    for i in range(trace.num_packets):
        t_ns += int(trace.gap_ns[i])
        packets.append(
            (t_ns, trace.five_tuple(int(trace.flow_id[i])), int(trace.size_bytes[i]))
        )
    write_pcap(path, packets)
    print(f"wrote {path} ({path.stat().st_size / 1024:.0f} KiB)")


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.mkdtemp()) / "capture.pcap.gz"
        synthesize_capture(path)

    # 1. ingest: parse Ethernet/IPv4/TCP/UDP headers into a Trace
    trace, counters = trace_from_pcap(path)
    print(f"\ningested {counters['total']} frames: "
          f"{counters['ipv4']} IPv4, {counters['tcp_udp']} TCP/UDP, "
          f"{counters['skipped_non_ip']} non-IP skipped")
    print(f"trace: {trace.num_packets} packets, {trace.num_flows} flows, "
          f"{trace.duration_ns / 1e6:.1f} ms of capture time")

    # 2. analyse the flow mix
    stats = concentration(trace, by="bytes")
    print(f"flow skew: gini={stats['gini']:.2f}, "
          f"top-16 flows carry {stats['top16_share']:.0%} of the bytes")

    # 3. replay through the scheduler study at 110% load
    service = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    config = SimConfig(num_cores=8, services=service, collect_latencies=False)
    capacity = service.capacity_pps([8], mean_size_bytes=348)
    workload = build_workload(
        [trace], [HoltWintersParams(a=1.10 * capacity)],
        duration_ns=units.ms(10), seed=0,
    )
    report = simulate(
        workload, LAPSScheduler(LAPSConfig(num_services=1), rng=0), config
    )
    print(f"\nLAPS on this capture at 110% load: "
          f"{report.drop_fraction:.1%} dropped, "
          f"{report.out_of_order} out-of-order, "
          f"{report.migrated_flows} flows migrated")


if __name__ == "__main__":
    main()
