#!/usr/bin/env python
"""Quickstart: schedule one trace three ways and compare.

Builds a CAIDA-like synthetic trace, offers it at ~105% of an 8-core
IP-forwarding system's capacity, and runs the paper's three contenders:
FCFS (flow-oblivious), AFS (hash + arbitrary bucket shift) and LAPS
(hash + AFD-guided elephant migration).  Prints the Fig. 7-style
metrics for each.

Run:  python examples/quickstart.py
"""

from repro import (
    AFSScheduler,
    HoltWintersParams,
    LAPSConfig,
    LAPSScheduler,
    Service,
    ServiceSet,
    SimConfig,
    build_workload,
    make_scheduler,
    preset_trace,
    simulate,
    units,
)
from repro.util.tables import format_table


def main() -> None:
    # 1. a trace: 100k packets, elephants-and-mice flow mix
    trace = preset_trace("caida-1", num_packets=100_000)
    print(f"trace: {trace.num_packets} packets, {trace.num_flows} flows\n")

    # 2. a single-service system (IP forwarding, 0.5 us per packet)
    service = ServiceSet([Service(0, "ip-forward", units.us(0.5))])
    config = SimConfig(num_cores=8, services=service, collect_latencies=True)

    # 3. offered load: ~105% of ideal capacity, constant rate
    capacity = service.capacity_pps([config.num_cores], mean_size_bytes=348)
    workload = build_workload(
        [trace],
        [HoltWintersParams(a=1.05 * capacity)],
        duration_ns=units.ms(20),
        seed=7,
    )
    print(f"offered: {workload.num_packets} packets over 20 ms "
          f"(~{workload.offered_rate_pps() / 1e6:.2f} Mpps)\n")

    # 4. run the three schedulers
    schedulers = {
        "fcfs": make_scheduler("fcfs"),
        "afs": AFSScheduler(cooldown_ns=units.us(100)),
        "laps": LAPSScheduler(LAPSConfig(num_services=1), rng=1),
    }
    rows = []
    for name, sched in schedulers.items():
        rep = simulate(workload, sched, config)
        rows.append([
            name, rep.dropped, f"{rep.drop_fraction:.1%}",
            rep.out_of_order, f"{rep.ooo_fraction:.2%}",
            rep.flow_migration_events,
            f"{rep.latency_ns['p99'] / 1e3:.0f}",
        ])
    print(format_table(
        ["scheduler", "dropped", "drop %", "ooo", "ooo %", "migrations", "p99 us"],
        rows,
        title="LAPS vs baselines (105% load, 8 cores)",
    ))


if __name__ == "__main__":
    main()
