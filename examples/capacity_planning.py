#!/usr/bin/env python
"""Capacity planning: how many cores does a target loss rate need?

The paper's economic argument for LAPS (Sec. II): static worst-case
provisioning wastes cores; a scheduler that balances well and shares
cores between services needs fewer of them.  This example sweeps the
core count for a fixed offered load and reports the drop rate per
scheduler — the gap between the curves is the hardware LAPS saves.

Run:  python examples/capacity_planning.py
"""

from repro import (
    AFSScheduler,
    HoltWintersParams,
    LAPSConfig,
    LAPSScheduler,
    Service,
    ServiceSet,
    SimConfig,
    build_workload,
    make_scheduler,
    preset_trace,
    simulate,
    units,
)
from repro.util.tables import format_table

TARGET_LOSS = 0.02


def main() -> None:
    trace = preset_trace("caida-1", num_packets=100_000)
    service = ServiceSet([Service(0, "ip-forward", units.us(0.5))])

    # fixed offered load: what 10 perfectly-utilised cores could serve
    offered = 0.95 * 10 * service[0].capacity_pps(348)
    workload = build_workload(
        [trace], [HoltWintersParams(a=offered)],
        duration_ns=units.ms(12), seed=5,
    )
    print(f"offered load: {offered / 1e6:.2f} Mpps "
          f"({workload.num_packets} packets over 12 ms)\n")

    rows = []
    first_ok: dict[str, int] = {}
    for cores in (10, 12, 14, 16, 20):
        config = SimConfig(num_cores=cores, services=service,
                           collect_latencies=False)
        row = [cores]
        for name, factory in (
            ("hash-static", lambda: make_scheduler("hash-static")),
            ("afs", lambda: AFSScheduler(cooldown_ns=units.us(100))),
            ("laps", lambda: LAPSScheduler(
                LAPSConfig(num_services=1), rng=1)),
        ):
            rep = simulate(workload, factory(), config)
            row.append(f"{rep.drop_fraction:.2%}")
            if rep.drop_fraction <= TARGET_LOSS and name not in first_ok:
                first_ok[name] = cores
        rows.append(row)

    print(format_table(
        ["cores", "hash-static", "afs", "laps"],
        rows,
        title=f"Drop rate vs core count (target <= {TARGET_LOSS:.0%})",
    ))
    print()
    for name in ("hash-static", "afs", "laps"):
        need = first_ok.get(name)
        print(f"  {name:12s} needs {'>20' if need is None else need} cores "
              f"for <= {TARGET_LOSS:.0%} loss")


if __name__ == "__main__":
    main()
